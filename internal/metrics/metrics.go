// Package metrics is the server's lock-cheap instrumentation layer:
// atomic counters and gauges, fixed-bucket latency histograms, and a
// registry that renders everything as Prometheus text exposition
// format (the admin listener's /metrics payload).
//
// Hot-path cost is one atomic add per observation — instruments are
// created once at server construction and held directly by the code
// they instrument; the registry only walks them at scrape time. Values
// that the server already tracks elsewhere (WAL counters, runtime
// stats, connection counts) are exported through read-at-scrape
// functions (CounterFunc/GaugeFunc) instead of being double-counted.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram bucket layout: upper
// bounds in SECONDS (the Prometheus convention for *_seconds series),
// exponential from 50µs to 5s. The range is matched to a networked
// group-commit store — unloaded point ops sit in the first few
// buckets, fsync-bound and cross-shard commits in the middle, and
// anything past a second is pathology the +Inf bucket catches.
var DefBuckets = []float64{
	50e-6, 100e-6, 200e-6, 400e-6, 800e-6, 1.6e-3, 3.2e-3, 6.4e-3,
	12.8e-3, 25.6e-3, 51.2e-3, 102.4e-3, 204.8e-3, 409.6e-3,
	819.2e-3, 1.6384, 5,
}

// SizeBuckets is a bucket layout for small cardinalities (batch
// occupancy): powers of two up to 1024.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket histogram. Observations are one atomic
// add into the owning bucket plus two for count/sum; buckets are
// cumulative only at render time (Prometheus `le` semantics).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, same unit as the bounds
}

// NewHistogram creates a histogram over the given ascending upper
// bounds (the implicit +Inf bucket is appended).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation (same unit as the bucket bounds).
func (h *Histogram) Observe(v float64) {
	// Binary search beats linear scan past ~8 buckets and costs the same
	// below; bounds are small and fixed so this stays branch-predictable.
	// SearchFloat64s returns the smallest i with bounds[i] >= v, so an
	// observation EXACTLY equal to an upper bound deterministically lands
	// in that bucket — `le` is inclusive, the Prometheus contract
	// (pinned by TestHistogramBoundaryObservation).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	// Float sum via CAS: observations are per-batch/per-request scale, so
	// the loop effectively never spins more than once or twice.
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start (latency
// histograms use second-unit bounds).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistSnapshot is a consistent-enough copy of a histogram's state
// (buckets are read without a global lock; under concurrent writes the
// snapshot may be mid-observation skewed by a count or two, which is
// irrelevant at scrape granularity).
type HistSnapshot struct {
	Bounds []float64 // upper bounds; +Inf implied after the last
	Counts []uint64  // per-bucket (NOT cumulative), len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket
// counts by linear interpolation within the owning bucket — the same
// estimate Prometheus's histogram_quantile computes server-side. An
// empty histogram reports 0; a quantile landing in the +Inf bucket
// reports the last finite bound (nothing better is known).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		frac := 1.0
		if c > 0 {
			frac = (rank - (cum - float64(c))) / float64(c)
		}
		return lo + (s.Bounds[i]-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Labels is one instrument's label set, rendered sorted by name.
type Labels map[string]string

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (labelset, value source) inside a family.
type series struct {
	labels string // pre-rendered `{a="x",b="y"}` or ""
	value  func() float64
	hist   *Histogram
}

// family groups series sharing a metric name. samples, when set,
// additionally produces a dynamic series set at scrape time.
type family struct {
	name    string
	help    string
	kind    kind
	sers    []series
	samples func() []Sample
}

// Registry holds the metric families and renders them. Registration
// happens at construction time (not on the hot path); WritePrometheus
// may be called concurrently with observations.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help string, k kind) *family {
	f, ok := r.index[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.index[name] = f
		r.fams = append(r.fams, f)
	}
	return f
}

// renderLabels renders a label set deterministically (sorted names).
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	names := make([]string, 0, len(ls))
	for n := range ls {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", n, ls[n])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, labels, func() float64 { return float64(c.Load()) })
	return c
}

// CounterFunc registers a counter whose value is read at scrape time —
// for monotone values the server already tracks (WAL appends, runtime
// commit counts).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter)
	f.sers = append(f.sers, series{labels: renderLabels(labels), value: fn})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, help, labels, func() float64 { return float64(g.Load()) })
	return g
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindGauge)
	f.sers = append(f.sers, series{labels: renderLabels(labels), value: fn})
}

// Sample is one dynamically-labelled sample produced at scrape time.
type Sample struct {
	Labels Labels
	Value  float64
}

// CounterSamples registers a counter family whose series set is
// produced fresh at each scrape — for label values the server cannot
// enumerate at construction time (per-hot-key conflict counts). The
// samples are rendered sorted by label block, so scrapes are
// deterministic for a given state.
func (r *Registry) CounterSamples(name, help string, fn func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter)
	f.samples = fn
}

// Histogram registers and returns a histogram series over bounds.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindHistogram)
	f.sers = append(f.sers, series{labels: renderLabels(labels), hist: h})
	return h
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// labelJoin splices an extra label into a pre-rendered label block.
func labelJoin(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		if f.samples != nil {
			samples := f.samples()
			rendered := make([]string, len(samples))
			for i, sm := range samples {
				rendered[i] = fmt.Sprintf("%s%s %s\n", f.name, renderLabels(sm.Labels), fmtFloat(sm.Value))
			}
			sort.Strings(rendered)
			for _, line := range rendered {
				if _, err := io.WriteString(w, line); err != nil {
					return err
				}
			}
		}
		for _, s := range f.sers {
			if f.kind != kindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(s.value())); err != nil {
					return err
				}
				continue
			}
			snap := s.hist.Snapshot()
			var cum uint64
			for i, c := range snap.Counts {
				cum += c
				le := "+Inf"
				if i < len(snap.Bounds) {
					le = fmtFloat(snap.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelJoin(s.labels, fmt.Sprintf("le=%q", le)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				f.name, s.labels, fmtFloat(snap.Sum), f.name, s.labels, snap.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
