package bitnum

import (
	"sync"
	"testing"

	"pnstm/internal/bitvec"
)

func TestQueueFIFOAndPreload(t *testing.T) {
	q := NewQueue(4)
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 4; i++ {
		f, ok := q.Reserve()
		if !ok || f.Bn != bitvec.Bitnum(i) || f.MinEp != 0 {
			t.Fatalf("Reserve #%d = %+v ok=%v", i, f, ok)
		}
	}
	if _, ok := q.Reserve(); ok {
		t.Fatal("Reserve on empty queue succeeded")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

func TestQueueReleaseCarriesMinEpoch(t *testing.T) {
	q := NewQueue(2)
	q.Reserve()
	q.Reserve()
	q.Release(1, 50)
	q.Release(0, 70)
	f, ok := q.Reserve()
	if !ok || f.Bn != 1 || f.MinEp != 50 {
		t.Fatalf("first re-reserve = %+v", f)
	}
	f, ok = q.Reserve()
	if !ok || f.Bn != 0 || f.MinEp != 70 {
		t.Fatalf("second re-reserve = %+v", f)
	}
}

func TestQueueCompactionReusesStorage(t *testing.T) {
	q := NewQueue(3)
	for round := 0; round < 1000; round++ {
		f1, _ := q.Reserve()
		f2, _ := q.Reserve()
		f3, _ := q.Reserve()
		q.Release(f1.Bn, 1)
		q.Release(f2.Bn, 1)
		q.Release(f3.Bn, 1)
		if q.Len() != 3 {
			t.Fatalf("round %d: Len = %d", round, q.Len())
		}
	}
	// The backing slice must have been compacted rather than grown
	// unboundedly (capacity stays small).
	if cap(q.entries) > 64 {
		t.Fatalf("queue storage grew to %d entries", cap(q.entries))
	}
}

func TestQueuePanicsOnBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, bitvec.Word + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQueue(%d) did not panic", n)
				}
			}()
			NewQueue(n)
		}()
	}
}

func TestQueueReleaseInvalidPanics(t *testing.T) {
	q := NewQueue(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release(None) did not panic")
		}
	}()
	q.Release(bitvec.None, 1)
}

func TestLimiterBasics(t *testing.T) {
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("could not acquire up to limit")
	}
	if l.TryAcquire() {
		t.Fatal("acquired past limit")
	}
	if l.InUse() != 2 || l.Peak() != 2 || l.Limit() != 2 {
		t.Fatalf("InUse=%d Peak=%d Limit=%d", l.InUse(), l.Peak(), l.Limit())
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("slot not returned")
	}
	l.Release()
	l.Release()
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d", l.InUse())
	}
}

func TestLimiterZeroAlwaysDenies(t *testing.T) {
	l := NewLimiter(0)
	if l.TryAcquire() {
		t.Fatal("limit-0 limiter granted a slot")
	}
}

func TestLimiterReleaseUnderflowPanics(t *testing.T) {
	l := NewLimiter(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	l.Release()
}

func TestLimiterConcurrentNeverExceedsLimit(t *testing.T) {
	const limit = 5
	l := NewLimiter(limit)
	var wg sync.WaitGroup
	violations := make(chan int, 1024)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if l.TryAcquire() {
					if n := l.InUse(); n > limit {
						violations <- n
					}
					l.Release()
				}
			}
		}()
	}
	wg.Wait()
	close(violations)
	for v := range violations {
		t.Fatalf("limiter exceeded limit: %d", v)
	}
	if l.Peak() > limit {
		t.Fatalf("peak %d > limit", l.Peak())
	}
}
