// Package bitnum manages the bounded space of transaction identifiers: the
// free bitnum queue with per-bitnum minimum epochs (paper §3.2) and the
// parent-transaction limiter that guarantees leaf blocks can always run
// (paper §6.1).
package bitnum

import (
	"fmt"
	"sync"

	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// Free is one entry of the free bitnum queue: a bitnum and the minimum
// epoch at which the context adopting it must be. The minimum epoch is set
// past the epochs at which previous transactions using the bitnum
// committed, so that epochs keep reflecting happens-before across re-use
// (paper §3.2).
type Free struct {
	Bn    bitvec.Bitnum
	MinEp epoch.Epoch
}

// Queue is the FIFO free-bitnum queue. It is unsynchronized: the scheduler
// embeds it under its own monitor, mirroring the paper's single queue lock
// (§3.2: "we can safely achieve [mutual exclusion] with only one lock
// associated with the queue").
type Queue struct {
	entries []Free
	head    int
}

// NewQueue returns a queue preloaded with bitnums [0, n), all usable from
// epoch 0.
func NewQueue(n int) *Queue {
	if n <= 0 || n > bitvec.Word {
		panic(fmt.Sprintf("bitnum: queue size %d out of range (0,%d]", n, bitvec.Word))
	}
	q := &Queue{entries: make([]Free, 0, n)}
	for i := 0; i < n; i++ {
		q.entries = append(q.entries, Free{Bn: bitvec.Bitnum(i)})
	}
	return q
}

// Len returns the number of free bitnums.
func (q *Queue) Len() int { return len(q.entries) - q.head }

// Reserve pops the oldest free bitnum. ok is false when the queue is empty
// (the caller decides whether to wait, borrow, or serialize).
func (q *Queue) Reserve() (f Free, ok bool) {
	if q.head == len(q.entries) {
		return Free{}, false
	}
	f = q.entries[q.head]
	q.entries[q.head] = Free{Bn: bitvec.None}
	q.head++
	if q.head == len(q.entries) {
		q.entries = q.entries[:0]
		q.head = 0
	}
	return f, true
}

// Release appends a freed bitnum with its minimum re-use epoch (called by
// the publisher once the bitnum is fully published).
func (q *Queue) Release(bn bitvec.Bitnum, minEp epoch.Epoch) {
	if !bn.Valid() {
		panic("bitnum: Release of invalid bitnum")
	}
	q.entries = append(q.entries, Free{Bn: bn, MinEp: minEp})
}

// Limiter enforces the paper's L limit (§6.1) on how many bitnums may be
// held by blocked parents at once: a block that wants to fork must acquire
// a slot first, and when none is available the fork degrades to serial
// execution of its inner blocks (§6.2). With L = P−1 out of N = 2P bitnums,
// at least P bitnums always remain for leaf blocks, so the P worker slots
// can never all starve.
//
// Unlike the paper, the limit applies to every fork, transactional or not
// (DESIGN.md D8): a parked continuation pins its block's bitnum either way.
type Limiter struct {
	mu    sync.Mutex
	limit int
	inUse int
	peak  int
}

// NewLimiter returns a limiter with the given slot count. limit 0 is legal
// (every fork serializes), which is the correct degenerate behaviour for
// P = 1.
func NewLimiter(limit int) *Limiter {
	if limit < 0 {
		panic("bitnum: negative limiter")
	}
	return &Limiter{limit: limit}
}

// TryAcquire takes a parent slot if one is available.
func (l *Limiter) TryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse >= l.limit {
		return false
	}
	l.inUse++
	if l.inUse > l.peak {
		l.peak = l.inUse
	}
	return true
}

// Release returns a parent slot.
func (l *Limiter) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse == 0 {
		panic("bitnum: Limiter.Release without Acquire")
	}
	l.inUse--
}

// InUse returns the number of held slots.
func (l *Limiter) InUse() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// Peak returns the high-water mark of held slots.
func (l *Limiter) Peak() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}

// Limit returns the configured maximum.
func (l *Limiter) Limit() int { return l.limit }
