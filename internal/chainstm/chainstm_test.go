package chainstm

import (
	"errors"
	"sync"
	"testing"
)

func TestBasicCommit(t *testing.T) {
	o := NewObj(1)
	tx := Begin(nil)
	if err := tx.Store(o, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Load(o); err != nil || v != 2 {
		t.Fatalf("Load = %v, %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 2 {
		t.Fatalf("Peek = %v", o.Peek())
	}
	if o.owner != nil {
		t.Fatal("root commit left an owner")
	}
}

func TestAbortRestoresValueAndOwner(t *testing.T) {
	o := NewObj("before")
	tx := Begin(nil)
	if err := tx.Store(o, "after"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != "before" || o.owner != nil {
		t.Fatalf("Peek=%v owner=%v", o.Peek(), o.owner)
	}
}

func TestChildInheritsParentOwnership(t *testing.T) {
	o := NewObj(0)
	parent := Begin(nil)
	if err := parent.Store(o, 1); err != nil {
		t.Fatal(err)
	}
	child := Begin(parent)
	if err := child.Store(o, 2); err != nil {
		t.Fatalf("child conflicting with ancestor: %v", err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	// Ownership propagated back to the parent at child commit.
	if o.owner != parent {
		t.Fatalf("owner = %v, want parent", o.owner)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 2 || o.owner != nil {
		t.Fatalf("Peek=%v owner=%v", o.Peek(), o.owner)
	}
}

func TestConcurrentSiblingsConflict(t *testing.T) {
	o := NewObj(0)
	parent := Begin(nil)
	c1 := Begin(parent)
	c2 := Begin(parent)
	if err := c1.Store(o, 1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Store(o, 2); !errors.Is(err, ErrConflict) {
		t.Fatalf("sibling conflict not detected: %v", err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	// After c1 commits into parent, c2 (a child of parent) may write.
	if err := c2.Store(o, 2); err != nil {
		t.Fatalf("post-commit access: %v", err)
	}
}

func TestParentAbortUndoesCommittedChild(t *testing.T) {
	o := NewObj(10)
	parent := Begin(nil)
	child := Begin(parent)
	if err := child.Store(o, 11); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Abort(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 10 || o.owner != nil {
		t.Fatalf("Peek=%v owner=%v", o.Peek(), o.owner)
	}
}

func TestDeepChainAncestorAccess(t *testing.T) {
	o := NewObj(0)
	root := Begin(nil)
	if err := root.Store(o, -1); err != nil {
		t.Fatal(err)
	}
	cur := root
	const depth = 64
	for d := 1; d <= depth; d++ {
		cur = Begin(cur)
		if cur.Depth() != d {
			t.Fatalf("depth = %d, want %d", cur.Depth(), d)
		}
		if err := cur.Store(o, d); err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
	}
	for cur != nil {
		if err := cur.Commit(); err != nil {
			t.Fatal(err)
		}
		cur = cur.parent
	}
	if o.Peek() != depth || o.owner != nil {
		t.Fatalf("Peek=%v owner=%v", o.Peek(), o.owner)
	}
}

func TestDoubleCommitAndUseAfterCommit(t *testing.T) {
	tx := Begin(nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	if err := tx.Store(NewObj(0), 1); err == nil {
		t.Fatal("access after commit accepted")
	}
	if err := tx.Abort(); err == nil {
		t.Fatal("abort after commit accepted")
	}
}

func TestAtomicRetries(t *testing.T) {
	o := NewObj(0)
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := Atomic(nil, func(tx *Tx) error {
					v, err := tx.Load(o)
					if err != nil {
						return err
					}
					return tx.Store(o, v.(int)+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if o.Peek() != goroutines*perG {
		t.Fatalf("counter = %v, want %d", o.Peek(), goroutines*perG)
	}
}

func TestAtomicUserError(t *testing.T) {
	o := NewObj(5)
	boom := errors.New("boom")
	err := Atomic(nil, func(tx *Tx) error {
		if err := tx.Store(o, 6); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if o.Peek() != 5 {
		t.Fatalf("rollback failed: %v", o.Peek())
	}
}

func TestParallelNestedSiblingsUnderOneParent(t *testing.T) {
	// The chainstm equivalent of the Figure-1 transfer.
	a, b := NewObj(100), NewObj(50)
	parent := Begin(nil)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = Atomic(parent, func(tx *Tx) error {
			v, err := tx.Load(a)
			if err != nil {
				return err
			}
			return tx.Store(a, v.(int)-30)
		})
	}()
	go func() {
		defer wg.Done()
		errs[1] = Atomic(parent, func(tx *Tx) error {
			v, err := tx.Load(b)
			if err != nil {
				return err
			}
			return tx.Store(b, v.(int)+30)
		})
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.Peek() != 70 || b.Peek() != 80 {
		t.Fatalf("a=%v b=%v", a.Peek(), b.Peek())
	}
}
