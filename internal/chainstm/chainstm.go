// Package chainstm is a parallel-nested STM whose transaction-handling
// costs grow with nesting depth. It exists as the contrast baseline for
// the bit-vector STM in internal/core.
//
// It implements the design the paper argues against (§4.2 "on-commit
// bitnum reclaiming" and the NesTM discussion in §8):
//
//   - ancestor queries walk the parent chain — O(depth) per access;
//   - commit eagerly propagates ownership of every written object to the
//     parent — O(write-set) per commit, and the same object is re-merged
//     at every ancestor level, so the total reclaiming work is multiplied
//     by the nesting depth.
//
// The public surface is deliberately minimal: Begin/Commit/Abort plus
// Load/Store on objects. Callers bring their own parallelism (the
// benchmarks in the root package drive it from the same workloads as the
// bit-vector STM).
package chainstm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned by accesses that lose a conflict; the caller
// aborts and retries.
var ErrConflict = errors.New("chainstm: conflict")

// Status values of a transaction.
const (
	statusActive int32 = iota
	statusCommitted
	statusAborted
)

// Tx is a transaction descriptor. Its position in the tree is its parent
// pointer; every ancestor query walks the chain.
type Tx struct {
	parent *Tx
	depth  int
	status atomic.Int32

	// undo holds this transaction's write records, spliced into the
	// parent at commit so aborting an ancestor undoes the whole subtree.
	mu       sync.Mutex
	undoHead *writeRec
	undoTail *writeRec
}

type writeRec struct {
	obj      *Obj
	saved    any
	oldOwner *Tx
	next     *writeRec
}

// Obj is one transactional memory location with eager ownership: owner is
// the innermost active transaction that wrote it, nil when quiescent.
type Obj struct {
	mu    sync.Mutex
	val   any
	owner *Tx
}

// NewObj returns an object holding initial.
func NewObj(initial any) *Obj { return &Obj{val: initial} }

// Peek reads without transactional bookkeeping (quiescent use only).
func (o *Obj) Peek() any { return o.val }

// Begin starts a transaction as a child of parent (nil for a root). O(1).
func Begin(parent *Tx) *Tx {
	t := &Tx{parent: parent}
	if parent != nil {
		t.depth = parent.depth + 1
	}
	return t
}

// Depth returns the transaction's nesting depth (root = 0).
func (t *Tx) Depth() int { return t.depth }

// IsAncestor walks t's parent chain looking for a — the O(depth) ancestor
// query this package exists to demonstrate (a counts as its own ancestor).
func IsAncestor(a, t *Tx) bool {
	for p := t; p != nil; p = p.parent {
		if p == a {
			return true
		}
	}
	return false
}

// Store writes o inside t, returning ErrConflict when a non-ancestor
// active transaction owns the object.
func (t *Tx) Store(o *Obj, v any) error {
	if err := t.own(o); err != nil {
		return err
	}
	o.mu.Lock()
	o.val = v
	o.mu.Unlock()
	return nil
}

// Load reads o inside t. Reads are treated as writes for conflict
// purposes, mirroring the write-only model of the evaluation.
func (t *Tx) Load(o *Obj) (any, error) {
	if err := t.own(o); err != nil {
		return nil, err
	}
	o.mu.Lock()
	v := o.val
	o.mu.Unlock()
	return v, nil
}

// own acquires ownership of o for t.
func (t *Tx) own(o *Obj) error {
	if t.status.Load() != statusActive {
		return fmt.Errorf("chainstm: access in %s transaction", t.statusName())
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.owner == t {
		return nil
	}
	if o.owner != nil && !IsAncestor(o.owner, t) {
		return ErrConflict
	}
	t.pushUndo(o, o.val, o.owner)
	o.owner = t
	return nil
}

func (t *Tx) pushUndo(o *Obj, saved any, oldOwner *Tx) {
	r := &writeRec{obj: o, saved: saved, oldOwner: oldOwner, next: t.undoHead}
	t.undoHead = r
	if t.undoTail == nil {
		t.undoTail = r
	}
}

// Commit finishes t: ownership of every written object moves to the
// parent — the eager O(write-set) merge repeated at every nesting level —
// and the undo log is spliced into the parent for cascading aborts.
func (t *Tx) Commit() error {
	if !t.status.CompareAndSwap(statusActive, statusCommitted) {
		return fmt.Errorf("chainstm: commit of %s transaction", t.statusName())
	}
	for r := t.undoHead; r != nil; r = r.next {
		o := r.obj
		o.mu.Lock()
		if o.owner == t {
			o.owner = t.parent
		}
		o.mu.Unlock()
	}
	if p := t.parent; p != nil && t.undoHead != nil {
		p.mu.Lock()
		t.undoTail.next = p.undoHead
		p.undoHead = t.undoHead
		if p.undoTail == nil {
			p.undoTail = t.undoTail
		}
		p.mu.Unlock()
	}
	t.undoHead, t.undoTail = nil, nil
	return nil
}

// Abort rolls t back, restoring values and previous owners newest-first
// (including writes merged from committed descendants).
func (t *Tx) Abort() error {
	if !t.status.CompareAndSwap(statusActive, statusAborted) {
		return fmt.Errorf("chainstm: abort of %s transaction", t.statusName())
	}
	for r := t.undoHead; r != nil; r = r.next {
		o := r.obj
		o.mu.Lock()
		o.val = r.saved
		o.owner = r.oldOwner
		o.mu.Unlock()
	}
	t.undoHead, t.undoTail = nil, nil
	return nil
}

func (t *Tx) statusName() string {
	switch t.status.Load() {
	case statusActive:
		return "active"
	case statusCommitted:
		return "committed"
	default:
		return "aborted"
	}
}

// Atomic runs fn as a child transaction of parent with retry-on-conflict,
// the convenience driver used by benchmarks. fn returns ErrConflict (or
// wraps it) to request a retry.
func Atomic(parent *Tx, fn func(*Tx) error) error {
	for {
		t := Begin(parent)
		err := fn(t)
		if err == nil {
			return t.Commit()
		}
		_ = t.Abort()
		if errors.Is(err, ErrConflict) {
			runtime.Gosched()
			continue
		}
		return err
	}
}
