package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/internal/bitnum"
	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// Config configures a Runtime. The zero value is not valid; use sensible
// defaults via Default or fill in Workers.
type Config struct {
	// Workers is P, the number of worker slots. 1..32 (the bit-vector
	// space is N = 2P <= 64, the machine word: paper §3).
	Workers int

	// Serial selects the serial-nesting baseline (paper §7): Parallel runs
	// children inline in one context, work stealing and the publisher are
	// disabled, and conflict detection degenerates to the trivial check.
	Serial bool

	// DisableAggressiveRecycle turns off the unilateral discard of the
	// last remaining sibling's bitnum (§6.2). On by default; the switch
	// exists for ablation benchmarks and debugging.
	DisableAggressiveRecycle bool

	// LIFODispatch dispatches the newest queued block first (depth-first)
	// instead of the paper's FIFO global queue. Ablation only.
	LIFODispatch bool

	// SharedReads enables the §9 read-access extension: Load becomes a
	// shared read that never conflicts with other readers, and a write is
	// admitted only when every active reader is an ancestor. With it off
	// (the default), every access is a write, as in the paper's evaluation.
	SharedReads bool

	// PublisherPartitions is the number of parallel publisher goroutines
	// (§5.1). Default 1.
	PublisherPartitions int

	// PublisherStartPaused creates the publisher paused (tests: opens the
	// lazy-publication window arbitrarily wide).
	PublisherStartPaused bool

	// SpinRetries bounds how many times an access re-tests a conflicted
	// object before aborting; spinning rides out the publication latency
	// of already committed transactions (§5.1). Default 64.
	SpinRetries int

	// YieldAfterAborts is the number of consecutive aborts after which a
	// context returns its worker slot to the scheduler before retrying.
	// Default 3.
	YieldAfterAborts int

	// EscalateAfterAborts is the number of consecutive aborts after which
	// a nested transaction stops retrying locally and propagates the
	// conflict to its parent, aborting it (and, transitively, the writes
	// of its committed children). This is the nesting-aware contention
	// management the paper's conclusions call for: with plain
	// requester-aborts, two transactions that each committed a child and
	// are parked waiting for a second child can deadlock — each surviving
	// child conflicts with the other parent's lineage, and aborting a leaf
	// releases nothing. Escalation aborts a parent, which does release its
	// merged children's entries. Default 8.
	EscalateAfterAborts int

	// BackoffBase / BackoffMax bound the randomized exponential backoff
	// between retries. Defaults 500ns / 100µs.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// CrisisAborts is the number of consecutive ROOT aborts after which
	// the cross-root livelock breaker engages. Nested escalation (above)
	// resolves contention inside one block tree, but concurrent root
	// transactions with overlapping write sets can still abort each other
	// forever: exponential backoff tops out at BackoffMax, which is
	// comparable to one root attempt's execution time, so staggering
	// never separates them. A root that aborts this many times contends
	// for the runtime's single crisis token: the winner keeps retrying
	// with normal backoff while every loser sleeps CrisisBackoff-scale
	// intervals between attempts — quiescing the system so the token
	// holder commits, releases the token, and the next struggling root
	// takes it. Token waiters only ever sleep (never block on a lock
	// while holding a worker slot), so the breaker cannot deadlock the
	// scheduler. Default 16.
	CrisisAborts int

	// CrisisBackoff is the sleep interval for roots that lost the crisis
	// token race. It must dwarf a typical root attempt so the holder runs
	// effectively alone. Default 2ms.
	CrisisBackoff time.Duration

	// Seed seeds the per-slot RNGs used for backoff jitter. Default 1.
	Seed int64
}

func (c *Config) fillDefaults() error {
	if c.Workers <= 0 {
		return fmt.Errorf("core: Workers must be positive, got %d", c.Workers)
	}
	if 2*c.Workers > bitvec.Word {
		return fmt.Errorf("core: Workers must be <= %d (bit-vector space is 2P bits)", bitvec.Word/2)
	}
	if c.PublisherPartitions <= 0 {
		c.PublisherPartitions = 1
	}
	if c.SpinRetries <= 0 {
		c.SpinRetries = 64
	}
	if c.YieldAfterAborts <= 0 {
		c.YieldAfterAborts = 3
	}
	if c.EscalateAfterAborts <= 0 {
		c.EscalateAfterAborts = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Nanosecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 100 * time.Microsecond
	}
	if c.CrisisAborts <= 0 {
		c.CrisisAborts = 16
	}
	if c.CrisisBackoff <= 0 {
		c.CrisisBackoff = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Runtime owns the worker slots, the scheduler, the shared epoch state and
// the publisher. Create with New, run root blocks with Run, and Close when
// done.
type Runtime struct {
	cfg     Config
	nbits   int // N: size of the bitnum space
	st      *epoch.State
	pub     *epoch.Publisher
	sched   *scheduler
	limiter *bitnum.Limiter
	slots   []*slot
	stats   counters

	closeMu sync.RWMutex
	closed  atomic.Bool

	// crisisToken is the cross-root livelock breaker's exclusivity hint:
	// held (true) while one root transaction that crossed CrisisAborts
	// retries at full speed and its competitors quiesce. A hint, not a
	// lock — losers keep retrying on a slow clock, so a stuck holder can
	// never wedge the runtime.
	crisisToken atomic.Bool

	// rec is the lifecycle-event flight recorder (D35). Always built;
	// records only while its enabled flag is set.
	rec *recorder

	// rootSeq tickets traced root transactions so every event in one
	// root's lineage shares an identity.
	rootSeq atomic.Uint64

	// crisisHook, when non-nil, runs on the goroutine of each root that
	// takes the crisis token (the server dumps the flight recorder).
	crisisHook func()

	// testHook, when non-nil, receives diagnostic scheduling events
	// (dispatch decisions, borrow conversions). Tests only.
	testHook func(format string, args ...any)
}

func (rt *Runtime) hook(format string, args ...any) {
	if rt.testHook != nil {
		rt.testHook(format, args...)
	}
}

// New creates a runtime with P = cfg.Workers worker slots and an identifier
// space of N = 2P bitnums, of which at most L = N−P may be held by blocked
// parents (paper §6.1) — guaranteeing P bitnums always cycle through leaf
// blocks.
func New(cfg Config) (*Runtime, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg}
	rt.rec = newRecorder(cfg.Workers)
	if cfg.Serial {
		// The baseline runs on the caller's goroutine with no scheduler,
		// bitnums, or publisher (paper §7: "work stealing is disabled ...
		// without any dequeuing or locking").
		return rt, nil
	}
	p := cfg.Workers
	rt.nbits = 2 * p
	rt.st = &epoch.State{}
	rt.limiter = bitnum.NewLimiter(rt.nbits - p)
	rt.slots = make([]*slot, p)
	for i := range rt.slots {
		rt.slots[i] = &slot{id: i, rng: rand.New(rand.NewSource(cfg.Seed + int64(i)))}
		rt.slots[i].ep.Store(1)
	}
	rt.sched = newScheduler(rt, rt.nbits, rt.slots, cfg.LIFODispatch)
	rt.pub = epoch.NewPublisher(rt.st, epoch.PublisherConfig{
		Bitnums:     rt.nbits,
		Partitions:  cfg.PublisherPartitions,
		MaxEpoch:    rt.maxEpoch,
		Free:        rt.sched.freeBitnum,
		StartPaused: cfg.PublisherStartPaused,
	})
	return rt, nil
}

// maxEpoch returns an epoch at least as large as every running context's
// epoch. Slot epochs are monotone (D11), so this also dominates the epochs
// of parked contexts, which resumed at epochs their slots once published.
func (rt *Runtime) maxEpoch() epoch.Epoch {
	var m epoch.Epoch
	for _, s := range rt.slots {
		if e := s.epochOf(); e > m {
			m = e
		}
	}
	return m
}

// Run executes fn as a root block and blocks until it (and every block it
// forked) completes. Multiple Run calls may be active concurrently; each
// is an independent block tree. A panic inside the tree is re-raised on
// the calling goroutine after all of the tree's transactions have been
// rolled back or committed.
func (rt *Runtime) Run(fn func(*Ctx)) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if rt.closed.Load() {
		return ErrClosed
	}
	if rt.cfg.Serial {
		ctx := &Ctx{rt: rt, ep: 1}
		fn(ctx)
		return nil
	}
	done := make(chan rootResult, 1)
	rt.sched.enqueue(&block{program: fn, minEp: 1, done: done})
	res := <-done
	if res.panicVal != nil {
		panic(res.panicVal)
	}
	return nil
}

// Close waits for active Run calls to finish and stops the publisher.
// Further Run calls return ErrClosed. Close is idempotent.
func (rt *Runtime) Close() {
	rt.closed.Store(true)
	rt.closeMu.Lock() // waits for in-flight Runs holding the read lock
	rt.closeMu.Unlock()
	if rt.pub != nil {
		rt.pub.Close()
	}
}

// Stats returns a snapshot of runtime activity counters.
func (rt *Runtime) Stats() Stats {
	s := rt.stats.snapshot()
	if rt.limiter != nil {
		s.PeakParents = uint64(rt.limiter.Peak())
	}
	s.TraceEvents, s.TraceDropped = rt.TraceStats()
	return s
}

// Publisher exposes the background publisher for tests and benchmarks
// (pause/step/drain). Nil in serial mode.
func (rt *Runtime) Publisher() *epoch.Publisher { return rt.pub }

// helpPublish runs one synchronous publication cycle on the caller's
// goroutine. Accessors call it when an object's live stack outgrows the
// expected publication window, which means the background publisher is
// starved (e.g. GOMAXPROCS=1 under a tight transaction loop). A paused
// publisher is respected — tests pause it precisely to hold the lazy
// window open. Reports whether a cycle ran.
func (rt *Runtime) helpPublish() bool {
	if rt.pub == nil || rt.pub.Paused() {
		return false
	}
	rt.pub.StepOnce()
	rt.stats.helpPublishes.Add(1)
	return true
}

// Workers returns the configured worker count P.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Bitnums returns the identifier space size N (0 in serial mode).
func (rt *Runtime) Bitnums() int { return rt.nbits }

// newCtx builds the context for a dispatched block.
func (rt *Runtime) newCtx(b *block) *Ctx {
	c := &Ctx{
		rt:         rt,
		block:      b,
		baseTx:     b.baseTx,
		cur:        b.baseTx,
		comDesc:    cloneNotes(b.comDesc),
		traceRoot:  b.traceRoot,
		traceBatch: b.traceBatch,
		traceTS:    b.traceTS,
		traceShard: b.traceShard,
		traceTag:   b.traceTag,
		traceSkip:  b.traceSkip,
	}
	if b.borrowed {
		c.bn = b.baseTx.bitnum
	} else {
		c.bn = b.bn
	}
	if b.baseTx != nil {
		c.ancBase = b.baseTx.anc
	}
	return c
}

// runBlock is the body of a dispatch: bind the slot, run the program,
// finish the block. f is the reserved bitnum (ignored when borrowed).
func (rt *Runtime) runBlock(sl *slot, b *block, f bitnum.Free, borrowed bool) {
	if borrowed {
		b.bn = bitvec.None
		b.borrowed = true
		rt.stats.borrowDispatch.Add(1)
	} else if j := b.succ; j != nil {
		j.mu.Lock()
		if b.baseTx != nil && b.baseTx.liveBlocks.Load() == 1 {
			// Steal-time single child (paper stealBlock lines 9–10): every
			// other block under the base transaction has finished, so
			// borrow its bitnum and return the reserved one unused (D9).
			// The whole-transaction live-block count, not the join's, is
			// what makes this sound (D15).
			j.mu.Unlock()
			rt.sched.returnUnused(f)
			b.bn = bitvec.None
			b.borrowed = true
			rt.stats.borrowDispatch.Add(1)
			rt.hook("DISPATCH steal-borrow block=%p baseTx.bn=%v baseTx.anc=%v minEp=%d", b, b.baseTx.bitnum, b.baseTx.anc, b.minEp)
		} else {
			b.bn, b.bnMinEp = f.Bn, f.MinEp
			j.precBitnums = j.precBitnums.Add(f.Bn)
			j.live = append(j.live, b)
			j.mu.Unlock()
			rt.stats.dispatches.Add(1)
			rt.hook("DISPATCH block=%p bn=%v bnMinEp=%d minEp=%d join=%p", b, b.bn, b.bnMinEp, b.minEp, j)
		}
	} else {
		b.bn, b.bnMinEp = f.Bn, f.MinEp
		rt.stats.dispatches.Add(1)
	}

	ctx := rt.newCtx(b)
	// The extra erases against the block's fork-time epoch and the base
	// transaction's begin epoch catch ancestor bitnums that were
	// unilaterally discarded while this block sat in the queue, even when
	// the dispatch epoch jumps past their publication horizon. The base
	// ancestor set is a begin-time snapshot, and a discarded bitnum is
	// always published through the begin epoch of any transaction whose
	// snapshot contains it (D11).
	if b.baseTx != nil {
		ctx.adoptSlot(sl, epoch.Max(b.minEp, b.bnMinEp), b.baseTx.beginEp, b.minEp)
	} else {
		ctx.adoptSlot(sl, epoch.Max(b.minEp, b.bnMinEp), b.minEp)
	}

	func() {
		defer func() {
			if r := recover(); r != nil {
				ctx.noteBlockPanic(r)
			}
		}()
		b.program(ctx)
	}()

	rt.finishBlock(ctx)
}

// finishBlock implements the paper's finishBlock: discard the block's
// bitnum, fold the block's outcome into its continuation's join, possibly
// unilaterally discard the last remaining sibling's bitnum (§6.2), and
// either hand the worker slot to the now-ready continuation or return it
// to the scheduler.
func (rt *Runtime) finishBlock(c *Ctx) {
	b := c.block
	finishEp := c.ep
	selfDiscard := false
	if !b.borrowed && b.bn.Valid() && b.bnDiscarded.CompareAndSwap(false, true) {
		rt.st.Discard(b.bn, finishEp)
		rt.stats.selfDiscards.Add(1)
		selfDiscard = true
	}

	j := b.succ
	if j == nil {
		// Root block: return the slot and report completion.
		rt.sched.releaseSlot(c.slot)
		if b.done != nil {
			b.done <- rootResult{panicVal: c.panicVal}
		}
		return
	}

	j.mu.Lock()
	j.comDesc = rt.cleanNotes(j.comDesc)
	if selfDiscard {
		// The continuation may access this block's committed writes before
		// the publisher catches up; the note prevents those pathological
		// false conflicts (§5.2 case 2).
		j.comDesc = addNote(j.comDesc, comNote{bn: b.bn, ep: finishEp})
	}
	j.comDesc = mergeNotes(j.comDesc, rt.cleanNotes(c.comDesc))
	if !b.borrowed && b.bn.Valid() {
		j.precBitnums = j.precBitnums.Remove(b.bn)
		j.removeLive(b.bn)
	}
	if finishEp > j.minEp {
		j.minEp = finishEp
	}
	if c.panicVal != nil && !j.panicked {
		j.panicked, j.panicVal = true, c.panicVal
	}
	remaining := j.unfinished.Add(-1)
	var victim *block
	if remaining == 1 && !rt.cfg.DisableAggressiveRecycle && len(j.live) == 1 {
		// Exactly one sibling still runs. If it is also the base
		// transaction's only other live block (liveBlocks == 2: the
		// finisher has not decremented yet), it has become an only child:
		// its transactions can merge into the base transaction's identity
		// and its bitnum can be recycled (paper finishBlock lines 9–10,
		// strengthened per D15 — a stale read can only skip the
		// optimization, never grant it wrongly, because blocks the victim
		// forks afterwards belong to the victim's own line).
		v := j.live[0]
		if v.baseTx != nil && v.baseTx.liveBlocks.Load() == 2 &&
			v.bnDiscarded.CompareAndSwap(false, true) {
			victim = v
			j.precBitnums = j.precBitnums.Remove(v.bn)
			j.removeLive(v.bn)
		}
	}
	var payload joinPayload
	if remaining == 0 {
		payload = joinPayload{
			slot:    c.slot,
			minEp:   j.minEp,
			comDesc: j.comDesc,
			pval:    j.panicVal,
			ppanic:  j.panicked,
		}
	}
	j.mu.Unlock()

	if victim != nil {
		rt.st.Discard(victim.bn, finishEp)
		rt.stats.remoteDiscards.Add(1)
	}
	// The finished block leaves the base transaction's live set last, so
	// that concurrent single-child decisions still count it (D15).
	if b.baseTx != nil {
		b.baseTx.liveBlocks.Add(-1)
	}
	if remaining == 0 {
		// Hand the slot straight to the parked continuation (paper
		// finishBlock lines 11–13: the last finisher runs the successor).
		j.resume <- payload
		return
	}
	rt.sched.releaseSlot(c.slot)
}

// cleanNotes drops committed-descendant notes whose bitnum has been
// published past the note epoch (it may be re-used from then on).
func (rt *Runtime) cleanNotes(notes []comNote) []comNote {
	kept := notes[:0]
	for _, n := range notes {
		if rt.st.Masks.Get(n.ep).Has(n.bn) {
			continue
		}
		kept = append(kept, n)
	}
	return kept
}
