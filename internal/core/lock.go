package core

import "sync"

// objMutex guards one object's value and access stack. A thin wrapper so
// the locking strategy can be swapped (e.g. for a spinlock) in one place;
// the critical sections are a handful of word operations, so a futex-based
// sync.Mutex is already close to optimal under low contention.
type objMutex struct {
	mu sync.Mutex
}

func (m *objMutex) lock()   { m.mu.Lock() }
func (m *objMutex) unlock() { m.mu.Unlock() }
