// Package core implements the parallel-nested software transactional memory
// of Barreto et al. (PPoPP 2010) together with the epoch-based work-stealing
// runtime it relies on (paper §3–§6).
//
// The package couples four mechanisms that the paper designs as one system:
//
//   - a fork–join scheduler with P worker slots and a single global block
//     queue (§3), where a context that forks parks and the last finishing
//     child hands its slot directly to the parked continuation;
//   - constant-time transaction begin/commit over reserved bitnums (§4.1);
//   - eager conflict detection on per-object access stacks using one-word
//     ancestor sets (§4.2);
//   - lazy bitnum reclaiming through a background publisher and committed
//     masks (§5), with comDesc notes preventing the pathological false
//     conflicts of §5.2, and the §6 machinery (parent limiter, borrowing,
//     serialization fallback, unilateral discard) that lets a bounded
//     identifier space support unbounded transaction trees.
package core

import "errors"

// ErrClosed is returned by Run after the runtime has been closed.
var ErrClosed = errors.New("core: runtime is closed")

// conflictSignal unwinds a transaction body when an access detects a
// conflict. It is recovered inside Atomic, which rolls back and retries;
// it never escapes the package. obj is the object whose access failed
// the conflict test — carried for abort attribution (D35) and
// propagated when the conflict escalates to the parent, so the event
// stream pins the blame on the contended object at every level.
type conflictSignal struct {
	obj *Object
}

// blockPanic wraps a panic value that crossed a block boundary so the
// forking context can re-panic it without confusing it with internal
// signals.
type blockPanic struct {
	val any
}
