package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// Oracle testing: generate random nested-parallel transactional programs
// whose outcome is deterministic (leaves own disjoint object partitions,
// or all operations commute), run them under the parallel runtime and the
// serial-nesting baseline, and require identical final states.

// progSpec is a randomly generated program tree.
type progSpec struct {
	kind     int // 0 = leaf tx, 1 = parallel fork, 2 = sequential block, 3 = nested atomic
	children []*progSpec
	objs     []int // leaf: indices of owned objects
	adds     []int // leaf: value added to each owned object
	depth    int
}

// genProg builds a random program over a disjoint partition of object
// indices. Every leaf gets its own slice of the partition, so the final
// state is schedule-independent.
func genProg(rng *rand.Rand, objIdx []int, depth int) *progSpec {
	if depth == 0 || len(objIdx) < 2 || rng.Intn(4) == 0 {
		adds := make([]int, len(objIdx))
		for i := range adds {
			adds[i] = rng.Intn(100) + 1
		}
		return &progSpec{kind: 0, objs: objIdx, adds: adds, depth: depth}
	}
	switch rng.Intn(3) {
	case 0: // parallel fork over a split of the partition
		n := 2 + rng.Intn(3)
		if n > len(objIdx) {
			n = len(objIdx)
		}
		p := &progSpec{kind: 1, depth: depth}
		per := len(objIdx) / n
		for i := 0; i < n; i++ {
			lo, hi := i*per, (i+1)*per
			if i == n-1 {
				hi = len(objIdx)
			}
			p.children = append(p.children, genProg(rng, objIdx[lo:hi], depth-1))
		}
		return p
	case 1: // sequential composition
		mid := 1 + rng.Intn(len(objIdx)-1)
		return &progSpec{kind: 2, depth: depth, children: []*progSpec{
			genProg(rng, objIdx[:mid], depth-1),
			genProg(rng, objIdx[mid:], depth-1),
		}}
	default: // nested atomic wrapper
		return &progSpec{kind: 3, depth: depth, children: []*progSpec{
			genProg(rng, objIdx, depth-1),
		}}
	}
}

// run executes the program in the given context.
func (p *progSpec) run(t *testing.T, c *Ctx, objs []*Object) {
	switch p.kind {
	case 0:
		if err := c.Atomic(func(c *Ctx) error {
			for i, oi := range p.objs {
				cur := c.Load(objs[oi]).(int)
				c.Store(objs[oi], cur+p.adds[i])
			}
			return nil
		}); err != nil {
			t.Errorf("leaf tx: %v", err)
		}
	case 1:
		fns := make([]func(*Ctx), len(p.children))
		for i, ch := range p.children {
			ch := ch
			fns[i] = func(c *Ctx) { ch.run(t, c, objs) }
		}
		c.Parallel(fns...)
	case 2:
		for _, ch := range p.children {
			ch.run(t, c, objs)
		}
	case 3:
		if err := c.Atomic(func(c *Ctx) error {
			p.children[0].run(t, c, objs)
			return nil
		}); err != nil {
			t.Errorf("wrapper tx: %v", err)
		}
	}
}

// execute runs the program on a fresh runtime and returns the final state.
func executeProg(t *testing.T, p *progSpec, nObjs, workers int, serial bool) []int {
	t.Helper()
	cfg := Config{Workers: workers, Serial: serial}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	objs := make([]*Object, nObjs)
	for i := range objs {
		objs[i] = NewObject(0)
	}
	root := p
	if err := rt.Run(func(c *Ctx) {
		// Everything under one top-level transaction, like the paper's
		// benchmark's single transaction T.
		if err := c.Atomic(func(c *Ctx) error {
			root.run(t, c, objs)
			return nil
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	out := make([]int, nObjs)
	for i, o := range objs {
		out[i] = o.Peek().(int)
	}
	return out
}

func TestOracleRandomProgramsMatchSerialBaseline(t *testing.T) {
	const nObjs = 24
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			idx := make([]int, nObjs)
			for i := range idx {
				idx[i] = i
			}
			p := genProg(rng, idx, 4)
			want := executeProg(t, p, nObjs, 1, true)
			for _, workers := range []int{2, 4} {
				got := executeProg(t, p, nObjs, workers, false)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d obj %d: got %d want %d", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestOracleCommutativeContention: all leaves increment the same counter
// set. Any serialization yields the same sums, so the oracle holds even
// under real conflicts and escalations.
func TestOracleCommutativeContention(t *testing.T) {
	const nObjs = 3
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		width := 2 + rng.Intn(5)
		depth := 1 + rng.Intn(3)
		incs := rng.Intn(5) + 1

		var expect [nObjs]int
		var build func(d int) *progSpec
		leafCount := 0
		build = func(d int) *progSpec {
			if d == 0 {
				leafCount++
				p := &progSpec{kind: 0}
				for o := 0; o < nObjs; o++ {
					p.objs = append(p.objs, o)
					p.adds = append(p.adds, incs)
				}
				return p
			}
			p := &progSpec{kind: 1}
			for i := 0; i < width; i++ {
				p.children = append(p.children, build(d-1))
			}
			return p
		}
		prog := build(depth)
		leaves := 1
		for i := 0; i < depth; i++ {
			leaves *= width
		}
		for o := 0; o < nObjs; o++ {
			expect[o] = leaves * incs
		}

		got := executeProg(t, prog, nObjs, 4, false)
		for o := 0; o < nObjs; o++ {
			if got[o] != expect[o] {
				t.Fatalf("seed %d: obj %d = %d, want %d (leaves=%d)", seed, o, got[o], expect[o], leaves)
			}
		}
	}
}
