package core

import (
	"pnstm/internal/bitnum"
	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
	"sync"
)

// scheduler implements the paper's elementary work-stealing system (§3): a
// single global block queue, P worker slots, and the free bitnum queue,
// all under one monitor — the paper's single queue lock. "Stealing" a
// block pairs an idle slot with a queued block and reserves a bitnum for
// it; the pairing spawns a goroutine that runs the block to completion.
//
// Beyond the paper's queue the scheduler also parks slot *waiters*:
// contexts that yielded their slot after repeated aborts. Queued blocks
// take priority over waiters — a waiter's conflict may only resolve once
// queued descendants have run — and waiters hold no object entries while
// parked (they yield only after rolling back), so this cannot block
// anyone.
type scheduler struct {
	rt *Runtime

	mu      sync.Mutex
	queue   []*block
	qhead   int
	free    *bitnum.Queue
	idle    []*slot
	waiters []chan *slot
	lifo    bool // dispatch order ablation: LIFO (depth-first) vs FIFO (paper)
}

func newScheduler(rt *Runtime, nbits int, slots []*slot, lifo bool) *scheduler {
	s := &scheduler{
		rt:   rt,
		free: bitnum.NewQueue(nbits),
		idle: make([]*slot, len(slots)),
		lifo: lifo,
	}
	copy(s.idle, slots)
	return s
}

func (s *scheduler) qlen() int { return len(s.queue) - s.qhead }

// peekLocked returns the next block to dispatch without removing it.
func (s *scheduler) peekLocked() *block {
	if s.lifo {
		return s.queue[len(s.queue)-1]
	}
	return s.queue[s.qhead]
}

// popLocked removes the next block.
func (s *scheduler) popLocked() *block {
	if s.lifo {
		b := s.queue[len(s.queue)-1]
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		return b
	}
	b := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	return b
}

// enqueue adds blocks to the queue and dispatches.
func (s *scheduler) enqueue(blocks ...*block) {
	s.mu.Lock()
	s.queue = append(s.queue, blocks...)
	s.dispatchLocked()
	s.mu.Unlock()
}

// enqueueAndRelease atomically enqueues fork children and releases the
// forking context's slot (paper parallel(): the forker ceases execution
// and its thread goes back to stealing).
func (s *scheduler) enqueueAndRelease(blocks []*block, sl *slot) {
	s.mu.Lock()
	s.queue = append(s.queue, blocks...)
	s.idle = append(s.idle, sl)
	s.dispatchLocked()
	s.mu.Unlock()
}

// releaseSlot returns a slot to the pool.
func (s *scheduler) releaseSlot(sl *slot) {
	s.mu.Lock()
	s.idle = append(s.idle, sl)
	s.dispatchLocked()
	s.mu.Unlock()
}

// parkWaiter releases a slot and registers a channel to receive one back.
func (s *scheduler) parkWaiter(sl *slot, ch chan *slot) {
	s.mu.Lock()
	s.idle = append(s.idle, sl)
	s.waiters = append(s.waiters, ch)
	s.dispatchLocked()
	s.mu.Unlock()
}

// freeBitnum is the publisher's callback: a fully published bitnum returns
// to the queue with its minimum re-use epoch (paper Fig. 4 lines 16–18).
func (s *scheduler) freeBitnum(bn bitvec.Bitnum, minEp epoch.Epoch) {
	s.mu.Lock()
	s.free.Release(bn, minEp)
	s.dispatchLocked()
	s.mu.Unlock()
}

// returnUnused gives back a bitnum that was reserved at dispatch but never
// adopted (the block turned out to be a steal-time single child, D9). The
// bitnum was never used at any epoch, so its minimum epoch is unchanged.
func (s *scheduler) returnUnused(f bitnum.Free) {
	s.mu.Lock()
	s.free.Release(f.Bn, f.MinEp)
	s.dispatchLocked()
	s.mu.Unlock()
}

// borrowEligibleLocked reports whether b can run borrowing its base
// transaction's bitnum: it must have an active base transaction and be the
// base transaction's sole live block — not merely its join's last
// unfinished preceding block, since bare nested forks put several live
// joins under one transaction (D15). Observing liveBlocks == 1 from the
// (queued) block's own perspective is stable: finished siblings stay
// finished, and the only block that could fork new ones is the observer.
func borrowEligibleLocked(b *block) bool {
	return b.succ != nil && b.baseTx != nil && b.baseTx.liveBlocks.Load() == 1
}

// dispatchLocked pairs queued blocks with idle slots while bitnums (or
// borrow eligibility) allow, then grants remaining idle slots to waiters.
// Must hold s.mu.
func (s *scheduler) dispatchLocked() {
	for {
		if s.qlen() > 0 && len(s.idle) > 0 {
			b := s.peekLocked()
			if s.free.Len() > 0 {
				f, _ := s.free.Reserve()
				s.popLocked()
				sl := s.popIdleLocked()
				go s.rt.runBlock(sl, b, f, false)
				continue
			}
			if borrowEligibleLocked(b) {
				s.popLocked()
				sl := s.popIdleLocked()
				go s.rt.runBlock(sl, b, bitnum.Free{Bn: bitvec.None}, true)
				continue
			}
			// Head-of-line block needs a bitnum; one will be freed by the
			// publisher as running blocks finish (the parent limiter
			// guarantees at least P bitnums cycle through leaf blocks).
		}
		if len(s.waiters) > 0 && len(s.idle) > 0 {
			ch := s.waiters[0]
			copy(s.waiters, s.waiters[1:])
			s.waiters = s.waiters[:len(s.waiters)-1]
			ch <- s.popIdleLocked()
			continue
		}
		return
	}
}

func (s *scheduler) popIdleLocked() *slot {
	sl := s.idle[len(s.idle)-1]
	s.idle[len(s.idle)-1] = nil
	s.idle = s.idle[:len(s.idle)-1]
	return sl
}

// freeBitnums reports the current number of free bitnums (tests).
func (s *scheduler) freeBitnums() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.free.Len()
}
