package core

import (
	"errors"
	"fmt"
	"testing"
)

// newRT builds a runtime with the given worker count and closes it at test
// end.
func newRT(t *testing.T, workers int, mutate ...func(*Config)) *Runtime {
	t.Helper()
	cfg := Config{Workers: workers}
	for _, m := range mutate {
		m(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Fatal("Workers=0 accepted")
	}
	if _, err := New(Config{Workers: 33}); err == nil {
		t.Fatal("Workers=33 accepted (bit space would exceed the word)")
	}
	rt, err := New(Config{Workers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Bitnums() != 64 {
		t.Fatalf("N = %d, want 64", rt.Bitnums())
	}
	rt.Close()
}

func TestSingleTransactionCommit(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject(10)
	err := rt.Run(func(c *Ctx) {
		if c.InTx() {
			t.Error("InTx true at root block")
		}
		err := c.Atomic(func(c *Ctx) error {
			if !c.InTx() {
				t.Error("InTx false inside Atomic")
			}
			old := c.Store(x, 42)
			if old != 10 {
				t.Errorf("Store returned old=%v", old)
			}
			if got := c.Load(x); got != 42 {
				t.Errorf("Load inside tx = %v", got)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 42 {
		t.Fatalf("final value = %v", got)
	}
	s := rt.Stats()
	if s.Committed != 1 || s.Begun != 1 || s.Aborted != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUserErrorAborts(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject("init")
	boom := errors.New("boom")
	err := rt.Run(func(c *Ctx) {
		if got := c.Atomic(func(c *Ctx) error {
			c.Store(x, "dirty")
			return boom
		}); !errors.Is(got, boom) {
			t.Errorf("Atomic error = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != "init" {
		t.Fatalf("value after user abort = %v", got)
	}
	if d := x.StackDepth(); d != 0 {
		t.Fatalf("stack depth after abort = %d", d)
	}
	if s := rt.Stats(); s.UserAbort != 1 || s.Committed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAccessOutsideTransactionPanics(t *testing.T) {
	rt := newRT(t, 1)
	x := NewObject(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = rt.Run(func(c *Ctx) {
		c.Load(x)
	})
}

func TestSequentialSiblingTransactions(t *testing.T) {
	// Case 1 of §5.2: the second transaction in the same block accesses
	// the first one's objects. Same bitnum + epoch window must grant the
	// access with no conflict even before publication.
	rt := newRT(t, 2, func(c *Config) { c.PublisherStartPaused = true })
	x := NewObject(0)
	err := rt.Run(func(c *Ctx) {
		for i := 1; i <= 5; i++ {
			i := i
			if err := c.Atomic(func(c *Ctx) error {
				c.Store(x, i)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 5 {
		t.Fatalf("final = %v", got)
	}
	if s := rt.Stats(); s.Conflicts != 0 || s.Aborted != 0 {
		t.Fatalf("case-1 false conflicts occurred: %+v", s)
	}
}

func TestNestedAtomicIsSingleChild(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject(0)
	y := NewObject(0)
	err := rt.Run(func(c *Ctx) {
		err := c.Atomic(func(c *Ctx) error {
			c.Store(x, 1)
			// footnote 3: atomic{atomic{...}} runs as a borrowed child.
			if err := c.Atomic(func(c *Ctx) error {
				c.Store(y, 2)
				c.Store(x, 10) // parent's object: ancestor access, no conflict
				return nil
			}); err != nil {
				return err
			}
			if got := c.Load(x); got != 10 {
				t.Errorf("parent sees %v after child commit", got)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if x.Peek() != 10 || y.Peek() != 2 {
		t.Fatalf("x=%v y=%v", x.Peek(), y.Peek())
	}
}

func TestNestedChildAbortKeepsParentWrites(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject("p0")
	y := NewObject("c0")
	boom := errors.New("child boom")
	err := rt.Run(func(c *Ctx) {
		err := c.Atomic(func(c *Ctx) error {
			c.Store(x, "p1")
			if err := c.Atomic(func(c *Ctx) error {
				c.Store(y, "c1")
				c.Store(x, "c-touches-x")
				return boom
			}); !errors.Is(err, boom) {
				t.Errorf("child err = %v", err)
			}
			// Child rolled back: its writes are gone, parent's remain.
			if got := c.Load(x); got != "p1" {
				t.Errorf("x after child abort = %v", got)
			}
			if got := c.Load(y); got != "c0" {
				t.Errorf("y after child abort = %v", got)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if x.Peek() != "p1" || y.Peek() != "c0" {
		t.Fatalf("x=%v y=%v", x.Peek(), y.Peek())
	}
}

func TestParentAbortUndoesCommittedChildren(t *testing.T) {
	// The undo-splice property (D6): aborting a parent undoes writes its
	// committed children made.
	rt := newRT(t, 2)
	x := NewObject(0)
	boom := errors.New("parent boom")
	err := rt.Run(func(c *Ctx) {
		err := c.Atomic(func(c *Ctx) error {
			if err := c.Atomic(func(c *Ctx) error {
				c.Store(x, 99)
				return nil
			}); err != nil {
				return err
			}
			return boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 0 {
		t.Fatalf("committed child's write survived parent abort: %v", got)
	}
}

func TestParallelOutsideTransaction(t *testing.T) {
	rt := newRT(t, 4)
	results := make([]int, 8)
	err := rt.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), 8)
		for i := range fns {
			i := i
			fns[i] = func(c *Ctx) { results[i] = i * i }
		}
		c.Parallel(fns...)
		// Join: every child ran before Parallel returned.
		for i, v := range results {
			if v != i*i {
				t.Errorf("child %d did not run: %d", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelSingleChildRunsInline(t *testing.T) {
	rt := newRT(t, 2)
	ran := false
	err := rt.Run(func(c *Ctx) {
		c.Parallel(func(c *Ctx) { ran = true })
	})
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
	s := rt.Stats()
	if s.InlineChildren != 1 {
		t.Fatalf("InlineChildren = %d", s.InlineChildren)
	}
	if s.Dispatches != 1 { // the root block only
		t.Fatalf("Dispatches = %d", s.Dispatches)
	}
}

func TestParallelEmptyIsNoop(t *testing.T) {
	rt := newRT(t, 2)
	if err := rt.Run(func(c *Ctx) { c.Parallel() }); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Transfer(t *testing.T) {
	// The paper's Figure 1: a transfer whose debit and credit run as
	// parallel nested transactions inside the outer transaction.
	rt := newRT(t, 4)
	a := NewObject(100)
	b := NewObject(50)
	amount := 30
	var newBalanceB int
	err := rt.Run(func(c *Ctx) {
		err := c.Atomic(func(c *Ctx) error { // t0
			c.Parallel(
				func(c *Ctx) { // t1: debit
					if err := c.Atomic(func(c *Ctx) error {
						n := c.Load(a).(int)
						c.Store(a, n-amount)
						return nil
					}); err != nil {
						t.Error(err)
					}
				},
				func(c *Ctx) { // t2: credit
					if err := c.Atomic(func(c *Ctx) error {
						n := c.Load(b).(int)
						c.Store(b, n+amount)
						return nil
					}); err != nil {
						t.Error(err)
					}
				},
			)
			// Line 14: t0 reads B after its child committed — §5.2 case 2.
			newBalanceB = c.Load(b).(int)
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Peek() != 70 || b.Peek() != 80 || newBalanceB != 80 {
		t.Fatalf("a=%v b=%v read=%d", a.Peek(), b.Peek(), newBalanceB)
	}
}

func TestFigure1SameAccount(t *testing.T) {
	// The paper's A == B scenario: debit and credit target the same
	// account, so t1 and t2 genuinely conflict; one aborts and retries,
	// and the net effect must still be atomic.
	rt := newRT(t, 4)
	a := NewObject(100)
	amount := 30
	err := rt.Run(func(c *Ctx) {
		if err := c.Atomic(func(c *Ctx) error {
			c.Parallel(
				func(c *Ctx) {
					if err := c.Atomic(func(c *Ctx) error {
						n := c.Load(a).(int)
						c.Store(a, n-amount)
						return nil
					}); err != nil {
						t.Error(err)
					}
				},
				func(c *Ctx) {
					if err := c.Atomic(func(c *Ctx) error {
						n := c.Load(a).(int)
						c.Store(a, n+amount)
						return nil
					}); err != nil {
						t.Error(err)
					}
				},
			)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Peek(); got != 100 {
		t.Fatalf("balance after -30/+30 = %v, want 100", got)
	}
}

func TestParallelChildrenSeeParentWrites(t *testing.T) {
	// Children are descendants: accessing the parent's written objects
	// must never conflict (the ancestor test's core guarantee). Each child
	// reads its own object so only parent-vs-child entries are exercised;
	// siblings sharing an object conflict transiently by design (case 3).
	rt := newRT(t, 4)
	objs := make([]*Object, 4)
	for i := range objs {
		objs[i] = NewObject(7)
	}
	got := make([]int, 4)
	err := rt.Run(func(c *Ctx) {
		if err := c.Atomic(func(c *Ctx) error {
			for _, o := range objs {
				c.Store(o, 123)
			}
			fns := make([]func(*Ctx), 4)
			for i := range fns {
				i := i
				fns[i] = func(c *Ctx) {
					if err := c.Atomic(func(c *Ctx) error {
						got[i] = c.Load(objs[i]).(int)
						return nil
					}); err != nil {
						t.Error(err)
					}
				}
			}
			c.Parallel(fns...)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 123 {
			t.Errorf("child %d read %d", i, v)
		}
	}
	if s := rt.Stats(); s.Aborted != 0 {
		t.Errorf("ancestor accesses aborted: %+v", s)
	}
}

func TestSiblingConflictIsResolved(t *testing.T) {
	// Two parallel siblings increment the same counter; conflict
	// detection plus retry must serialize them (no lost update).
	rt := newRT(t, 4)
	x := NewObject(0)
	const siblings = 8
	err := rt.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), siblings)
		for i := range fns {
			fns[i] = func(c *Ctx) {
				if err := c.Atomic(func(c *Ctx) error {
					c.Store(x, c.Load(x).(int)+1)
					return nil
				}); err != nil {
					t.Error(err)
				}
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != siblings {
		t.Fatalf("lost updates: %v, want %d", got, siblings)
	}
}

func TestPanicPropagatesThroughJoin(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if fmt.Sprint(r) != "child exploded" {
			t.Fatalf("panic = %v", r)
		}
		// The enclosing transaction must have been rolled back.
		if got := x.Peek(); got != 1 {
			t.Fatalf("x = %v after panic rollback", got)
		}
	}()
	_ = rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			c.Store(x, 2)
			c.Parallel(
				func(c *Ctx) { panic("child exploded") },
				func(c *Ctx) {},
			)
			return nil
		})
	})
}

func TestRunAfterClose(t *testing.T) {
	rt := newRT(t, 2)
	rt.Close()
	if err := rt.Run(func(*Ctx) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	rt.Close() // idempotent
}

func TestConcurrentRuns(t *testing.T) {
	rt := newRT(t, 4)
	const runs = 8
	objs := make([]*Object, runs)
	for i := range objs {
		objs[i] = NewObject(0)
	}
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		i := i
		go func() {
			errs <- rt.Run(func(c *Ctx) {
				_ = c.Atomic(func(c *Ctx) error {
					c.Store(objs[i], i)
					return nil
				})
			})
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i, o := range objs {
		if o.Peek() != i {
			t.Fatalf("obj %d = %v", i, o.Peek())
		}
	}
}
