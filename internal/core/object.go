package core

import (
	"runtime"

	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// Object is one transactional memory location. It carries the per-object
// access stack of the paper (§4.2): each entry records the ancestor set
// and epoch of a transaction that accessed the object, and the topmost
// entry always denotes a descendant of every other entry. The current
// value lives in val; overwritten values are kept in the writers' undo
// logs.
type Object struct {
	mu      objMutex
	val     any
	stack   []objEntry
	readers readerSet // shared-read entries (Config.SharedReads, paper §9)

	// label names the object for conflict attribution (D35) — e.g. a
	// stmlib map bucket's "m:orders/3". Written once by SetLabel before
	// the object sees transactional traffic, read lock-free afterwards.
	label string
	// pushSeq numbers entry pushes so rollback can identify exactly its
	// own entries. After a unilateral discard (§6.2), a merged victim's
	// active entries read as base-transaction-owned, and a sibling may
	// legitimately stack above them; a blind LIFO pop would then remove
	// the wrong entry (DESIGN.md D16).
	pushSeq uint64
	// head indexes the first live stack entry. Entries below head are
	// dead — every transaction in their ancestor sets has committed and
	// been published — and dead entries always form a bottom prefix of
	// the stack: an entry's lineage is a prefix of every entry above it,
	// a committed transaction has no active descendants, and publication
	// frontiers are monotone. A dead entry can have no outstanding undo
	// record either (records die with the topmost committed ancestor), so
	// dropping the prefix can never desynchronize rollback's pops (D7).
	head int
	// helpedAt is the pushSeq at which a help-publish cycle last failed
	// to compact this object below helpPublishThreshold. A depth that
	// stays over the threshold with an unchanged stack is genuinely deep
	// live nesting — publication cannot shrink it — so helping again is
	// wasted work until the stack changes (the next push bumps pushSeq
	// and re-arms the trigger).
	helpedAt uint64
}

// objEntry is one access-stack entry: the paper pushes (anc, epoch) pairs
// and filters committed bitnums lazily at query time. seq identifies the
// push for rollback (unused in reader entries).
type objEntry struct {
	anc bitvec.Vec
	ep  epoch.Epoch
	seq uint64
}

// pushEntry appends an entry and logs the matching undo record.
func (o *Object) pushEntry(c *Ctx, tx *txDesc) {
	o.pushSeq++
	o.stack = append(o.stack, objEntry{anc: c.ancBase, ep: c.ep, seq: o.pushSeq})
	tx.pushUndo(o, o.val, o.pushSeq)
}

// NewObject returns an object holding the given initial value.
func NewObject(initial any) *Object {
	return &Object{val: initial}
}

// SetLabel names the object for conflict attribution. Call once at
// structure-construction time, before any transaction touches the
// object; labels are read without synchronization afterwards.
func (o *Object) SetLabel(label string) { o.label = label }

// Label returns the attribution label ("" when unnamed).
func (o *Object) Label() string { return o.label }

// objLabel renders an object reference for an event, tolerating nil
// (a conflict signal that crossed a block boundary loses nothing but
// may have started unattributed).
func objLabel(o *Object) string {
	if o == nil {
		return ""
	}
	return o.label
}

// Peek returns the object's current value without any transactional
// bookkeeping. Only safe when no transactions are running (e.g. between
// Run calls); used to read results out.
func (o *Object) Peek() any { return o.val }

// SetDirect overwrites the value without transactional bookkeeping. Only
// safe when no transactions are running.
func (o *Object) SetDirect(v any) { o.val = v }

// StackDepth reports the current live access-stack depth
// (diagnostics/tests).
func (o *Object) StackDepth() int {
	o.mu.lock()
	d := len(o.stack) - o.head
	o.mu.unlock()
	return d
}

// compactThreshold is the live depth beyond which an access additionally
// tries to drop dead bottom entries. Small enough to bound memory under
// publication lag, large enough to keep the common path to one branch.
const compactThreshold = 8

// helpPublishThreshold is the live depth beyond which an accessor stops
// trusting the background publisher and runs a publication cycle itself
// (outside the object lock). The background goroutine can be starved
// arbitrarily long — e.g. GOMAXPROCS=1 with a worker in a tight
// transaction loop — and without helping, the stack of a hot object grows
// with the transaction count instead of staying bounded by the
// publication window (D7).
const helpPublishThreshold = 64

// dropDeadPrefix advances head past dead bottom entries and releases
// storage once the dead prefix dominates. Caller holds o.mu.
func (o *Object) dropDeadPrefix(rt *Runtime) {
	for o.head < len(o.stack) {
		e := &o.stack[o.head]
		if !e.anc.Minus(rt.st.Masks.Get(e.ep)).Empty() {
			break
		}
		o.stack[o.head] = objEntry{}
		o.head++
	}
	if o.head == len(o.stack) {
		o.stack, o.head = o.stack[:0], 0
		return
	}
	if o.head > cap(o.stack)/2 {
		n := copy(o.stack, o.stack[o.head:])
		o.stack, o.head = o.stack[:n], 0
	}
}

// access is the eager-validation access protocol (paper Fig. 3 `write`;
// all accesses are treated as writes, §4.2). It returns the value the
// object held before the access. On conflict it spins a bounded number of
// times — the conflict may be a lazy-publication false positive that the
// publisher resolves within microseconds (§5.1) — and then unwinds the
// transaction body with a conflictSignal for rollback and retry.
func (c *Ctx) access(o *Object, newVal any, store bool) any {
	tx := c.cur
	if tx == nil {
		panic("pnstm: transactional access outside an atomic block")
	}
	if c.rt.cfg.Serial {
		return c.serialAccess(o, newVal, store)
	}
	sharedRead := !store && c.rt.cfg.SharedReads
	spins := 0
	for {
		o.mu.lock()
		var granted bool
		if sharedRead {
			granted = c.tryRead(o, tx)
		} else {
			granted = c.tryAccess(o, tx)
		}
		if granted {
			old := o.val
			if store {
				o.val = newVal
			}
			deep := len(o.stack)-o.head > helpPublishThreshold && o.helpedAt != o.pushSeq
			o.mu.unlock()
			if deep && c.rt.helpPublish() {
				o.mu.lock()
				o.dropDeadPrefix(c.rt)
				if len(o.stack)-o.head > helpPublishThreshold {
					// Still deep after publishing: the depth is live
					// nesting, not publication lag. Disarm until the
					// stack changes.
					o.helpedAt = o.pushSeq
				}
				o.mu.unlock()
			}
			if spins > 0 {
				c.rt.stats.spinSaves.Add(1)
			}
			return old
		}
		o.mu.unlock()
		if spins == 0 {
			c.rt.stats.conflicts.Add(1)
		}
		if spins >= c.rt.cfg.SpinRetries {
			// Attribute the abort to the object that failed validation: the
			// signal carries it to Atomic's recover, which records it and
			// re-attaches it to any escalation it raises (D35).
			panic(conflictSignal{obj: o})
		}
		spins++
		runtime.Gosched()
	}
}

// tryAccess runs the conflict test under the object lock and, when the
// access is safe, pushes the stack entry and undo record. It returns
// false on conflict.
func (c *Ctx) tryAccess(o *Object, tx *txDesc) bool {
	if len(o.stack)-o.head > compactThreshold {
		o.dropDeadPrefix(c.rt)
	}
	// A write must dominate every active shared reader (§9 extension);
	// with SharedReads off the reader set is always empty and this is one
	// length check.
	if !c.readersAllAncestors(&o.readers, c.ancBase) {
		return false
	}
	if len(o.stack) == o.head {
		// Paper write() lines 2–4: first accessor.
		o.stack, o.head = o.stack[:0], 0
		o.pushEntry(c, tx)
		return true
	}
	top := &o.stack[len(o.stack)-1]
	// Paper write() line 5: the same transaction (same ancestor set, entry
	// epoch within our active window) already owns the top entry; write in
	// place. The epoch window is what distinguishes us from an earlier
	// transaction that used the same bitnum (§5.2 case 1).
	if top.anc == c.ancBase && tx.beginEp <= top.ep && top.ep <= c.ep {
		return true
	}
	xanc := c.activeAncestors(top.anc, top.ep)
	if xanc.Empty() {
		// Every transaction on the stack has committed and been published:
		// the stack is dead metadata. Compact before pushing (D7).
		o.stack, o.head = o.stack[:0], 0
		o.pushEntry(c, tx)
		return true
	}
	// Refresh our own ancestor set before the subset test: a unilaterally
	// discarded ancestor bitnum may have been re-used by a concurrent
	// transaction, and a stale bit on our side would make the test pass
	// wrongly (DESIGN.md D11).
	c.refreshAnc()
	// Paper noConflict: the access is safe iff every still-active
	// transaction that accessed the object is our ancestor.
	if xanc.SubsetOf(c.ancBase) {
		o.pushEntry(c, tx)
		return true
	}
	return false
}

// activeAncestors filters the committed transactions out of an entry's
// ancestor set (paper §5 + Fig. 5): subtract the committed mask of the
// entry's epoch, then subtract every committed-descendant note that is
// still unpublished — dropping notes whose bitnum has been published past
// the note epoch, since from that point on the bitnum may be re-used.
func (c *Ctx) activeAncestors(anc bitvec.Vec, ep epoch.Epoch) bitvec.Vec {
	out := anc.Minus(c.rt.st.Masks.Get(ep))
	if len(c.comDesc) > 0 {
		kept := c.comDesc[:0]
		for _, n := range c.comDesc {
			if c.rt.st.Masks.Get(n.ep).Has(n.bn) {
				continue // published: stop ignoring (Fig. 5 line 2)
			}
			kept = append(kept, n)
			out = out.Remove(n.bn)
		}
		c.comDesc = kept
	}
	return out
}

// serialAccess is the serial-nesting baseline's access path (paper §7):
// no locking, a peek at the access stack, an undo record when a new entry
// is needed. Serial stacks hold at most one entry per object — entries
// are conflict metadata only, and with a single thread the top entry can
// be replaced in place.
func (c *Ctx) serialAccess(o *Object, newVal any, store bool) any {
	tx := c.cur
	if len(o.stack) == 0 {
		o.stack = append(o.stack, objEntry{anc: c.ancBase, ep: c.ep})
		tx.pushUndo(o, o.val, 0)
	} else if top := &o.stack[len(o.stack)-1]; !(top.anc == c.ancBase && tx.beginEp <= top.ep && top.ep <= c.ep) {
		top.anc, top.ep = c.ancBase, c.ep
		tx.pushUndo(o, o.val, 0)
	}
	old := o.val
	if store {
		o.val = newVal
	}
	return old
}
