package core

import (
	"sync"
	"sync/atomic"

	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// txDesc is a transaction descriptor (paper §4.1). A transaction is
// identified by the pair (bitnum, epoch range) and positioned in the tree
// by its ancestor set; begin, commit and abort bookkeeping are all O(1)
// regardless of nesting depth.
type txDesc struct {
	// bitnum identifies the transaction while it is active. Borrowed
	// transactions share their parent's bitnum (§6.2).
	bitnum bitvec.Bitnum

	// anc is the ancestor set at begin time (self included). It is an
	// immutable snapshot: child blocks read it when they are dispatched
	// and apply their own erasures (DESIGN.md D11); the owning context
	// keeps the live, erased version in Ctx.ancBase.
	anc bitvec.Vec

	// beginEp is the first epoch at which the transaction was active.
	beginEp epoch.Epoch

	// parent is the enclosing transaction, nil for roots.
	parent *txDesc

	// borrowed marks a single-child transaction using its parent's bitnum;
	// its commit is an identity merge and must not be published (D4).
	borrowed bool

	// depth is the nesting depth (0 for roots), recorded into lifecycle
	// trace events (D35). Saturates at 255 — deeper than any real tree.
	depth uint8

	// liveBlocks counts unfinished blocks whose base transaction is this
	// one, across every fork made in its context (including bare forks by
	// descendant blocks that started no transaction of their own). The
	// §6.2 single-child optimizations are only sound against the whole
	// set: a block may borrow this transaction's bitnum only when it is
	// the sole live block (liveBlocks == 1 — stable, because the only
	// block that could fork more is the observer itself, and the
	// transaction's own context is parked on the last join), and a
	// finishing sibling may unilaterally discard the last remaining
	// block's bitnum only when the two of them are all that is left
	// (liveBlocks == 2). Checking only one join's count is unsound: bare
	// nested forks put several simultaneously active joins under one
	// transaction (DESIGN.md D15).
	liveBlocks atomic.Int32

	// Undo log: a newest-first singly linked list. The log exists so that
	// aborting a transaction — including one whose children already
	// committed into it — can restore every overwritten value; commit
	// splices the whole list into the parent in O(1), which is what keeps
	// commit depth-independent while still supporting cascading undo
	// (DESIGN.md D6).
	//
	// Concurrency: only sibling child transactions committing in parallel
	// can race on a parent's list (the owner is parked at the fork while
	// children run), so splices take undoMu; the owner's own pushes do not.
	undoMu   sync.Mutex
	undoHead *undoRec
	undoTail *undoRec
	writes   int
}

// undoRec records one overwritten value, or — for shared reads — one
// reader entry to retract on abort. Each write record corresponds to one
// entry pushed on obj's access stack (except in serial mode, where stacks
// hold at most one entry and rollback restores values only). Read records
// exist because an aborted transaction's bitnum is never published while
// its block lives, so a leftover reader entry would block every
// non-ancestor writer indefinitely: two mutually conflicting retry loops
// that both read before writing would livelock (DESIGN.md D16).
type undoRec struct {
	obj   *Object
	saved any
	next  *undoRec

	// read marks a reader-entry retraction record; anc/ep identify the
	// entry as recorded at append time.
	read bool
	anc  bitvec.Vec
	ep   epoch.Epoch

	// seq identifies the stack entry this write record pushed (D16).
	seq uint64
}

// pushUndo prepends a write record. Owner-only; no locking required (see
// undoMu doc above). seq identifies the pushed stack entry (0 in serial
// mode, where rollback restores values only).
func (tx *txDesc) pushUndo(o *Object, saved any, seq uint64) {
	r := &undoRec{obj: o, saved: saved, seq: seq, next: tx.undoHead}
	tx.undoHead = r
	if tx.undoTail == nil {
		tx.undoTail = r
	}
	tx.writes++
}

// pushReadUndo prepends a reader-entry retraction record.
func (tx *txDesc) pushReadUndo(o *Object, anc bitvec.Vec, ep epoch.Epoch) {
	r := &undoRec{obj: o, read: true, anc: anc, ep: ep, next: tx.undoHead}
	tx.undoHead = r
	if tx.undoTail == nil {
		tx.undoTail = r
	}
}

// spliceInto merges this transaction's undo log into parent in O(1),
// preserving newest-first order: everything this transaction (and its
// already-merged descendants) wrote is newer than what the parent had
// logged before.
func (tx *txDesc) spliceInto(parent *txDesc) {
	if tx.undoHead == nil {
		return
	}
	parent.undoMu.Lock()
	tx.undoTail.next = parent.undoHead
	parent.undoHead = tx.undoHead
	if parent.undoTail == nil {
		parent.undoTail = tx.undoTail
	}
	parent.writes += tx.writes
	parent.undoMu.Unlock()
	tx.undoHead, tx.undoTail, tx.writes = nil, nil, 0
}
