package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestCase2NoFalseConflictWithPausedPublisher is the §5.2 case-2 scenario
// with the publication window held open forever: a parent resuming after
// its forked children commit must access their objects without a single
// conflict, because the finishing blocks left comDesc notes.
func TestCase2NoFalseConflictWithPausedPublisher(t *testing.T) {
	rt := newRT(t, 4, func(c *Config) { c.PublisherStartPaused = true })
	objs := make([]*Object, 6)
	for i := range objs {
		objs[i] = NewObject(0)
	}
	err := rt.Run(func(c *Ctx) {
		if err := c.Atomic(func(c *Ctx) error {
			c.Parallel(
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						for _, o := range objs[:3] {
							c.Store(o, 1)
						}
						return nil
					})
				},
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						for _, o := range objs[3:] {
							c.Store(o, 2)
						}
						return nil
					})
				},
			)
			// Children committed; the publisher is paused, so the
			// committed masks are stale. comDesc must cover us.
			for i, o := range objs {
				want := 1
				if i >= 3 {
					want = 2
				}
				if got := c.Load(o).(int); got != want {
					t.Errorf("obj %d = %d, want %d", i, got, want)
				}
				c.Store(o, 10+i)
			}
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats(); s.Conflicts != 0 {
		t.Fatalf("case-2 false conflicts with paused publisher: %+v", s)
	}
	for i, o := range objs {
		if o.Peek() != 10+i {
			t.Fatalf("obj %d = %v", i, o.Peek())
		}
	}
}

// TestCase3ConflictResolvedByPublication: a conflict against a committed
// concurrent transaction is a false positive that publication resolves.
// With the publisher paused the requester must keep failing; resuming the
// publisher must unblock it.
func TestCase3ConflictResolvedByPublication(t *testing.T) {
	rt := newRT(t, 4, func(c *Config) {
		c.PublisherStartPaused = true
		c.SpinRetries = 2
	})
	x := NewObject(0)

	// Phase 1: a root transaction commits but is not published.
	if err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			c.Store(x, 1)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}

	// Phase 2: an unrelated root transaction touches the same object.
	// Its bitnum differs and the commit is unpublished, so the first
	// attempts conflict; a background resume lets it through.
	resumed := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		rt.Publisher().Resume()
		close(resumed)
	}()
	start := time.Now()
	if err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			c.Store(x, 2)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	<-resumed
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("second transaction won before publication — lazy window not exercised")
	}
	if s := rt.Stats(); s.Conflicts == 0 {
		t.Fatalf("expected conflicts during the stale window: %+v", s)
	}
	if x.Peek() != 2 {
		t.Fatalf("x = %v", x.Peek())
	}
}

// TestBitnumReuseAcrossManyBlocks drives far more blocks than there are
// bitnums through a tiny runtime, forcing reuse with minimum epochs.
func TestBitnumReuseAcrossManyBlocks(t *testing.T) {
	rt := newRT(t, 2) // N = 4 bitnums
	x := NewObject(0)
	const rounds = 200
	err := rt.Run(func(c *Ctx) {
		for r := 0; r < rounds; r++ {
			c.Parallel(
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(x, c.Load(x).(int)+1)
						return nil
					})
				},
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(x, c.Load(x).(int)+1)
						return nil
					})
				},
			)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 2*rounds {
		t.Fatalf("x = %v, want %d", got, 2*rounds)
	}
}

// TestDeepNestingBeyondBitnumSpace builds a transaction chain far deeper
// than N, which is only possible through borrowing and the serialization
// fallback (§6).
func TestDeepNestingBeyondBitnumSpace(t *testing.T) {
	rt := newRT(t, 2) // N = 4
	const depth = 100
	x := NewObject(0)
	var rec func(c *Ctx, d int) error
	rec = func(c *Ctx, d int) error {
		return c.Atomic(func(c *Ctx) error {
			c.Store(x, c.Load(x).(int)+1)
			if d == 0 {
				return nil
			}
			var err error
			c.Parallel(func(c *Ctx) { err = rec(c, d-1) })
			return err
		})
	}
	err := rt.Run(func(c *Ctx) {
		if err := rec(c, depth); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != depth+1 {
		t.Fatalf("x = %v, want %d", got, depth+1)
	}
	if s := rt.Stats(); s.Aborted != 0 {
		t.Fatalf("self-nesting chain aborted: %+v", s)
	}
}

// TestWideForkBeyondBitnumSpace forks far more parallel children inside a
// transaction than there are bitnums; the limiter must serialize the
// overflow and everything must still commit exactly once.
func TestWideForkBeyondBitnumSpace(t *testing.T) {
	rt := newRT(t, 2) // N = 4, L = 2
	var ran atomic.Int64
	const width = 64
	err := rt.Run(func(c *Ctx) {
		if err := c.Atomic(func(c *Ctx) error {
			fns := make([]func(*Ctx), width)
			for i := range fns {
				fns[i] = func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						ran.Add(1)
						return nil
					})
				}
			}
			c.Parallel(fns...)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != width {
		t.Fatalf("ran %d children, want %d", got, width)
	}
}

// TestDeepBinaryTreeSaturatesParentLimit builds the paper's §6.1 worst
// case: a full binary transaction tree deeper than the parent limit, so
// the serialization fallback and unilateral discards must engage.
func TestDeepBinaryTreeSaturatesParentLimit(t *testing.T) {
	for _, aggressive := range []bool{true, false} {
		name := "aggressive"
		if !aggressive {
			name = "conservative"
		}
		t.Run(name, func(t *testing.T) {
			rt := newRT(t, 4, func(c *Config) { c.DisableAggressiveRecycle = !aggressive })
			var leaves atomic.Int64
			const depth = 6 // 64 leaves, 63 internal parents >> L = 4
			var build func(c *Ctx, d int)
			build = func(c *Ctx, d int) {
				err := c.Atomic(func(c *Ctx) error {
					if d == 0 {
						leaves.Add(1)
						return nil
					}
					c.Parallel(
						func(c *Ctx) { build(c, d-1) },
						func(c *Ctx) { build(c, d-1) },
					)
					return nil
				})
				if err != nil {
					t.Error(err)
				}
			}
			if err := rt.Run(func(c *Ctx) { build(c, depth) }); err != nil {
				t.Fatal(err)
			}
			if got := leaves.Load(); got != 64 {
				t.Fatalf("leaves = %d, want 64", got)
			}
			s := rt.Stats()
			if s.SerializedFork == 0 && s.InlineChildren == 0 {
				t.Errorf("expected the fallback to engage: %+v", s)
			}
			t.Logf("stats: %+v", s)
		})
	}
}

// TestStressBankInvariant hammers a shared bank with random nested
// transfers and checks conservation of money throughout.
func TestStressBankInvariant(t *testing.T) {
	rt := newRT(t, 4)
	const accounts = 16
	const total = accounts * 1000
	objs := make([]*Object, accounts)
	for i := range objs {
		objs[i] = NewObject(1000)
	}
	const groups = 8
	const transfersPerGroup = 25
	err := rt.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), groups)
		for g := 0; g < groups; g++ {
			seed := int64(g + 1)
			fns[g] = func(c *Ctx) {
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < transfersPerGroup; i++ {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					amt := rng.Intn(100)
					_ = c.Atomic(func(c *Ctx) error {
						// Nested parallel debit/credit, Figure-1 style.
						c.Parallel(
							func(c *Ctx) {
								_ = c.Atomic(func(c *Ctx) error {
									c.Store(objs[from], c.Load(objs[from]).(int)-amt)
									return nil
								})
							},
							func(c *Ctx) {
								_ = c.Atomic(func(c *Ctx) error {
									c.Store(objs[to], c.Load(objs[to]).(int)+amt)
									return nil
								})
							},
						)
						return nil
					})
				}
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, o := range objs {
		sum += o.Peek().(int)
	}
	if sum != total {
		t.Fatalf("money not conserved: %d != %d (stats %+v)", sum, total, rt.Stats())
	}
	t.Logf("stats: %+v", rt.Stats())
}

// TestSerialModeBaseline checks the serial-nesting baseline executes the
// same programs with identical results and no parallel machinery.
func TestSerialModeBaseline(t *testing.T) {
	rt := newRT(t, 1, func(c *Config) { c.Serial = true })
	if rt.Publisher() != nil {
		t.Fatal("serial mode started a publisher")
	}
	x := NewObject(0)
	err := rt.Run(func(c *Ctx) {
		if err := c.Atomic(func(c *Ctx) error {
			c.Parallel(
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(x, c.Load(x).(int)+1)
						return nil
					})
				},
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(x, c.Load(x).(int)+10)
						return nil
					})
				},
			)
			c.Store(x, c.Load(x).(int)+100)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 111 {
		t.Fatalf("x = %v, want 111", got)
	}
	s := rt.Stats()
	if s.Conflicts != 0 || s.Dispatches != 0 {
		t.Fatalf("serial mode used parallel machinery: %+v", s)
	}
}

// TestSerialModeAbort checks rollback in the baseline.
func TestSerialModeAbort(t *testing.T) {
	rt := newRT(t, 1, func(c *Config) { c.Serial = true })
	x := NewObject(5)
	err := rt.Run(func(c *Ctx) {
		err := c.Atomic(func(c *Ctx) error {
			c.Store(x, 6)
			if err := c.Atomic(func(c *Ctx) error {
				c.Store(x, 7)
				return fmt.Errorf("inner abort")
			}); err == nil {
				t.Error("inner error lost")
			}
			if got := c.Load(x).(int); got != 6 {
				t.Errorf("x after inner abort = %d", got)
			}
			return fmt.Errorf("outer abort")
		})
		if err == nil {
			t.Error("outer error lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 5 {
		t.Fatalf("x = %v after aborts, want 5", got)
	}
}

// TestSerialVsParallelEquivalence runs a commutative workload in both
// modes and compares final states.
func TestSerialVsParallelEquivalence(t *testing.T) {
	run := func(serial bool) []int {
		rt := newRT(t, 4, func(c *Config) { c.Serial = serial; c.Workers = 4 })
		if serial {
			rt.cfg.Workers = 1
		}
		objs := make([]*Object, 8)
		for i := range objs {
			objs[i] = NewObject(0)
		}
		err := rt.Run(func(c *Ctx) {
			_ = c.Atomic(func(c *Ctx) error {
				fns := make([]func(*Ctx), 8)
				for i := range fns {
					i := i
					fns[i] = func(c *Ctx) {
						_ = c.Atomic(func(c *Ctx) error {
							c.Store(objs[i], c.Load(objs[i]).(int)+i)
							return nil
						})
					}
				}
				c.Parallel(fns...)
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(objs))
		for i, o := range objs {
			out[i] = o.Peek().(int)
		}
		return out
	}
	ser, par := run(true), run(false)
	for i := range ser {
		if ser[i] != par[i] {
			t.Fatalf("divergence at %d: serial %d, parallel %d", i, ser[i], par[i])
		}
	}
}

// TestManySequentialRootTransactions exercises epoch growth and the mask
// table over a long single-context run.
func TestManySequentialRootTransactions(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject(0)
	const n = 5000
	err := rt.Run(func(c *Ctx) {
		for i := 0; i < n; i++ {
			_ = c.Atomic(func(c *Ctx) error {
				c.Store(x, c.Load(x).(int)+1)
				return nil
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != n {
		t.Fatalf("x = %v", got)
	}
	// During the run the stack may hold a window of committed-but-
	// unpublished entries (publication lag), but never the full history.
	if d := x.StackDepth(); d >= n/2 {
		t.Fatalf("stack depth %d tracks transaction count %d", d, n)
	}
	// Once the publisher catches up, the next access compacts to a single
	// live entry (D7).
	rt.Publisher().Drain()
	if err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			c.Store(x, -1)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if d := x.StackDepth(); d > 2 {
		t.Fatalf("stack depth after drain = %d", d)
	}
}

// TestStackCompaction verifies dead committed entries are collected.
func TestStackCompaction(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject(0)
	for round := 0; round < 20; round++ {
		if err := rt.Run(func(c *Ctx) {
			_ = c.Atomic(func(c *Ctx) error {
				c.Store(x, round)
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
	rt.Publisher().Drain()
	if d := x.StackDepth(); d > 1 {
		t.Fatalf("stack not compacted: depth %d", d)
	}
}
