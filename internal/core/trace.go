package core

import (
	"sync/atomic"
	"time"
)

// Conflict X-ray flight recorder (DESIGN D35): every transaction
// lifecycle transition can emit one Event into a per-slot lock-free
// ring buffer. The recorder is built unconditionally but records
// nothing until tracing is enabled (Runtime.EnableTracing); the
// disabled path is a single atomic.Bool load per potential event, so
// the instrumentation can be compiled in everywhere the engine makes a
// decision without taxing the untraced hot path (benchmarked in
// trace_test.go).
//
// Ring discipline: each worker slot owns one ring and is its only
// writer (a slot runs one block at a time, and serial mode forbids
// concurrent Run calls), so writes are ordered per ring; readers are
// concurrent and lock-free. A cell is an atomic.Pointer[Event]: the
// writer publishes a fully built event with one pointer store, and a
// reader validates the cell against its expected sequence number — a
// lapped or not-yet-published cell simply ends the read. Overwrites of
// unread events are counted as drops on the reader side.

// Event kinds, in lifecycle order.
const (
	EvBegin uint8 = iota + 1
	EvCommit
	EvAbort    // conflict abort (the transaction retries)
	EvEscalate // conflict propagated to the parent transaction
	EvCrisis   // cross-root livelock breaker engaged by this root
)

// KindName renders an event kind for dumps and JSON.
func KindName(k uint8) string {
	switch k {
	case EvBegin:
		return "begin"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvEscalate:
		return "escalate"
	case EvCrisis:
		return "crisis"
	}
	return "unknown"
}

// Event is one recorded transaction-lifecycle transition. Identity
// fields make a request followable end to end: Root is the runtime's
// ticket for the root transaction this event happened under (a server
// batch), Batch/Shard are stamped by the embedding server, and Tag is
// whatever the caller set on the context for the current unit of work
// (the server stamps the request's structure:key). Obj carries the
// label of the object whose access conflict killed the transaction —
// only on abort/escalate events, and only when the structure gave its
// objects labels.
type Event struct {
	TS    int64  `json:"ts"` // unix nanoseconds
	Seq   uint64 `json:"seq"`
	Root  uint64 `json:"root"`
	Batch uint64 `json:"batch,omitempty"`
	Kind  uint8  `json:"kind"`
	Depth uint8  `json:"depth"`
	Shard uint8  `json:"shard"`
	Obj   string `json:"obj,omitempty"`
	Tag   string `json:"tag,omitempty"`
}

// KindString is Event's rendered kind (convenience for encoders).
func (e *Event) KindString() string { return KindName(e.Kind) }

// traceRingSize is each per-slot ring's capacity. Power of two; at
// ~2.5k events per second per slot under a hot loadgen this holds a
// couple of seconds of history per slot, which is what the trace
// endpoint and the crisis dump want.
const traceRingSize = 4096

// traceChunkSize is the writer-side allocation batch: events are carved
// out of writer-private arenas this many at a time, so the hot record
// path allocates once per chunk instead of once per event (the per-event
// heap allocation plus its GC scan cost dominated the traced overhead
// before D38). Chunks are never reused — a published *Event stays
// immutable forever — so readers need no copy-validation beyond the
// sequence check.
const traceChunkSize = 256

// traceRing is one slot's event ring: single writer, many readers.
type traceRing struct {
	pos    atomic.Uint64 // next sequence number to write
	events atomic.Uint64 // total recorded (single writer; read by stats)
	cells  [traceRingSize]atomic.Pointer[Event]
	chunk  []Event // writer-private arena; see traceChunkSize
}

// alloc hands out the next event slot from the writer's arena. Only the
// ring's single writer calls this.
func (r *traceRing) alloc() *Event {
	if len(r.chunk) == 0 {
		r.chunk = make([]Event, traceChunkSize)
	}
	ev := &r.chunk[0]
	r.chunk = r.chunk[1:]
	return ev
}

func (r *traceRing) record(ev *Event) {
	seq := r.pos.Add(1) - 1
	ev.Seq = seq
	r.cells[seq%traceRingSize].Store(ev)
	r.events.Add(1)
}

// readFrom copies events with sequence numbers in [cursor, head) into
// out, clamping a lapped cursor forward and counting the skipped
// events as dropped. The returned cursor is where the next read should
// start. A cell whose stored event does not match its expected
// sequence (mid-overwrite) ends the read early; the cursor stops
// before it so the next poll retries.
func (r *traceRing) readFrom(cursor uint64, out []Event) ([]Event, uint64, uint64) {
	head := r.pos.Load()
	var dropped uint64
	if head > traceRingSize && cursor < head-traceRingSize {
		dropped = head - traceRingSize - cursor
		cursor = head - traceRingSize
	}
	for cursor < head {
		ev := r.cells[cursor%traceRingSize].Load()
		if ev == nil || ev.Seq != cursor {
			break
		}
		out = append(out, *ev)
		cursor++
	}
	return out, cursor, dropped
}

// recorder owns the per-slot rings and the runtime-wide trace state.
// Event totals live on the rings (their single writers own the cache
// line); only the reader-side drop counter is shared.
//
// Each slot gets TWO rings: the main lifecycle ring (the firehose —
// read on demand by trace dumps and the /debug/trace window) and a
// conflict ring holding only abort/escalate/crisis events, which a
// continuous consumer like the hot-key profiler can poll cheaply —
// conflicts are orders of magnitude rarer than begins/commits, and
// having the profiler walk the firehose every tick was a measurable
// fraction of the traced overhead (D38).
type recorder struct {
	enabled   atomic.Bool
	sample    atomic.Uint64 // lifecycle sampling: record begin/commit for 1 in N roots (≤1: all)
	rings     []*traceRing
	conflicts []*traceRing
	dropped   atomic.Uint64 // total overwritten before any reader saw them
}

func newRecorder(slots int) *recorder {
	if slots < 1 {
		slots = 1
	}
	r := &recorder{
		rings:     make([]*traceRing, slots),
		conflicts: make([]*traceRing, slots),
	}
	for i := range r.rings {
		r.rings[i] = &traceRing{}
		r.conflicts[i] = &traceRing{}
	}
	return r
}

// ring picks the calling context's ring: the bound slot's, or ring 0
// when the context has none (serial mode).
func (r *recorder) ring(c *Ctx) *traceRing {
	if c.slot != nil && c.slot.id < len(r.rings) {
		return r.rings[c.slot.id]
	}
	return r.rings[0]
}

// conflictRing is ring's analog for the conflict-only rings.
func (r *recorder) conflictRing(c *Ctx) *traceRing {
	if c.slot != nil && c.slot.id < len(r.conflicts) {
		return r.conflicts[c.slot.id]
	}
	return r.conflicts[0]
}

// traceEvent records one lifecycle event for the context's current
// unit of work. Callers gate on rt.tracing() so the disabled path
// never reaches here.
func (c *Ctx) traceEvent(kind, depth uint8, obj string) {
	// Begin/commit are the hot-path firehose: they reuse the root
	// begin's cached clock (the whole lineage spans well under a
	// millisecond, and the window/ordering consumers only need batch
	// granularity). Conflict events are rare and incident-relevant, so
	// they pay for a fresh stamp.
	ts := c.traceTS
	if kind >= EvAbort || ts == 0 {
		ts = time.Now().UnixNano()
	}
	ring := c.rt.rec.ring(c)
	ev := ring.alloc()
	*ev = Event{
		TS:    ts,
		Root:  c.traceRoot,
		Batch: c.traceBatch,
		Kind:  kind,
		Depth: depth,
		Shard: c.traceShard,
		Obj:   obj,
		Tag:   c.traceTag,
	}
	ring.record(ev)
	if kind >= EvAbort {
		// Duplicate conflict events into the slot's conflict ring so
		// continuous consumers (the hot-key profiler) never have to walk
		// the lifecycle firehose. Distinct Event objects per ring: record
		// stamps each ring's own sequence into its copy.
		cr := c.rt.rec.conflictRing(c)
		cv := cr.alloc()
		*cv = *ev
		cr.record(cv)
	}
}

// tracing reports whether lifecycle events are being recorded.
func (rt *Runtime) tracing() bool { return rt.rec.enabled.Load() }

// EnableTracing switches lifecycle-event recording on or off. Safe to
// flip at any time; events race the flip benignly (a transaction that
// observed the old value finishes recording under it).
func (rt *Runtime) EnableTracing(on bool) { rt.rec.enabled.Store(on) }

// TracingEnabled reports the current recording state.
func (rt *Runtime) TracingEnabled() bool { return rt.tracing() }

// SetTraceSampling records full begin/commit lifecycle events for 1 in
// every roots (by root ticket); 0 or 1 records every root. Conflict
// events — abort, escalate, crisis — are ALWAYS recorded regardless,
// so the hot-key profiler's attribution stays exact while the
// steady-state firehose shrinks by the sampling factor (D38).
func (rt *Runtime) SetTraceSampling(every uint64) { rt.rec.sample.Store(every) }

// TraceSampling returns the lifecycle sampling divisor (≤1: all roots).
func (rt *Runtime) TraceSampling() uint64 { return rt.rec.sample.Load() }

// TraceRings returns the number of event rings — the cursor-slice
// length TraceRead expects.
func (rt *Runtime) TraceRings() int { return len(rt.rec.rings) }

// TraceRead drains events recorded since the given per-ring cursors
// (nil or short cursors read each ring from its start) and returns the
// events together with the advanced cursors. Events are returned in
// per-ring order; callers interleave by timestamp if they need a
// global order. Lock-free with respect to writers.
func (rt *Runtime) TraceRead(cursors []uint64) ([]Event, []uint64) {
	return rt.rec.drain(rt.rec.rings, cursors)
}

// TraceReadConflicts is TraceRead over the conflict-only rings: just
// abort/escalate/crisis events, always recorded regardless of
// lifecycle sampling. Continuous consumers (the hot-key profiler) poll
// here so their steady-state cost scales with the conflict rate, not
// the transaction rate.
func (rt *Runtime) TraceReadConflicts(cursors []uint64) ([]Event, []uint64) {
	return rt.rec.drain(rt.rec.conflicts, cursors)
}

// drain reads every ring in the set from its cursor, tallying laps.
func (rec *recorder) drain(rings []*traceRing, cursors []uint64) ([]Event, []uint64) {
	next := make([]uint64, len(rings))
	copy(next, cursors)
	var out []Event
	for i, ring := range rings {
		var dropped uint64
		out, next[i], dropped = ring.readFrom(next[i], out)
		if dropped > 0 {
			rec.dropped.Add(dropped)
		}
	}
	return out, next
}

// TraceSnapshot returns every event currently retained in the rings
// (cursor-free: up to traceRingSize per ring), for dumps.
func (rt *Runtime) TraceSnapshot() []Event {
	var out []Event
	for _, ring := range rt.rec.rings {
		head := ring.pos.Load()
		var from uint64
		if head > traceRingSize {
			from = head - traceRingSize
		}
		out, _, _ = ring.readFrom(from, out)
	}
	return out
}

// TraceStats reports the recorder's cumulative totals: events recorded
// and events overwritten before any reader drained them.
func (rt *Runtime) TraceStats() (events, dropped uint64) {
	for _, ring := range rt.rec.rings {
		events += ring.events.Load()
	}
	return events, rt.rec.dropped.Load()
}

// SetCrisisHook installs fn to be called (on the engaging root's
// goroutine — it must not block) each time a root transaction takes
// the crisis token. The server hooks its flight-recorder dump here.
// Set before the runtime runs work; nil clears.
func (rt *Runtime) SetCrisisHook(fn func()) { rt.crisisHook = fn }

// ---------------------------------------------------------------------------
// Per-context trace identity
// ---------------------------------------------------------------------------

// SetTraceTag labels the context's current unit of work; subsequent
// lifecycle events carry the tag. The server stamps each request's
// structure:key here so aborts attribute to the key that suffered
// them. Inherited by blocks forked from this context. Cheap enough to
// call unconditionally, but callers avoid building tag strings unless
// TracingEnabled.
func (c *Ctx) SetTraceTag(tag string) { c.traceTag = tag }

// TraceTag returns the current work label.
func (c *Ctx) TraceTag() string { return c.traceTag }

// StampTrace sets the batch/shard identity carried by this context's
// events (and inherited by forked blocks). The embedding server calls
// it once per batch root.
func (c *Ctx) StampTrace(batch uint64, shard uint8) {
	c.traceBatch, c.traceShard = batch, shard
}

// TraceRoot returns the root ticket of the context's current root
// transaction lineage (0 before the first traced begin).
func (c *Ctx) TraceRoot() uint64 { return c.traceRoot }
