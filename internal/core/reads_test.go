package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the §9 shared-read extension (Config.SharedReads).

func TestSharedReadersNeverConflict(t *testing.T) {
	// Sibling transactions read the same object concurrently — with the
	// publisher paused, so nothing is ever published. Zero conflicts
	// allowed: readers must not block readers. (A paused publisher also
	// never recycles bitnums, so the reader count must stay within the
	// N = 2P identifier budget: 6 children + the root block fit in 8.)
	rt := newRT(t, 4, func(c *Config) {
		c.SharedReads = true
		c.PublisherStartPaused = true
	})
	x := NewObject(42)
	const readers = 6
	var sum atomic.Int64
	err := rt.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), readers)
		for i := range fns {
			fns[i] = func(c *Ctx) {
				_ = c.Atomic(func(c *Ctx) error {
					sum.Add(int64(c.Load(x).(int)))
					time.Sleep(200 * time.Microsecond) // hold the read open
					return nil
				})
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 42*readers {
		t.Fatalf("sum = %d", sum.Load())
	}
	if s := rt.Stats(); s.Conflicts != 0 || s.Aborted != 0 {
		t.Fatalf("readers conflicted: %+v", s)
	}
}

func TestWriteWaitsForActiveReader(t *testing.T) {
	// A writer that is not an ancestor of an active reader must conflict
	// until the reader commits (and is published).
	rt := newRT(t, 4, func(c *Config) { c.SharedReads = true })
	x := NewObject(1)
	readerDone := make(chan struct{})
	writerDone := make(chan time.Time, 1)
	start := time.Now()
	err := rt.Run(func(c *Ctx) {
		c.Parallel(
			func(c *Ctx) { // long reader
				_ = c.Atomic(func(c *Ctx) error {
					_ = c.Load(x)
					time.Sleep(30 * time.Millisecond)
					return nil
				})
				close(readerDone)
			},
			func(c *Ctx) { // writer
				time.Sleep(5 * time.Millisecond) // let the reader in first
				_ = c.Atomic(func(c *Ctx) error {
					c.Store(x, 2)
					return nil
				})
				writerDone <- time.Now()
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-readerDone
	wrote := <-writerDone
	if wrote.Sub(start) < 25*time.Millisecond {
		t.Fatalf("writer finished after %v, before the reader released", wrote.Sub(start))
	}
	if x.Peek() != 2 {
		t.Fatalf("x = %v", x.Peek())
	}
}

func TestAncestorReaderDescendantWriter(t *testing.T) {
	// A transaction reads, then its parallel nested child writes: the
	// reader is an ancestor of the writer, so no conflict.
	rt := newRT(t, 4, func(c *Config) { c.SharedReads = true })
	x := NewObject(10)
	err := rt.Run(func(c *Ctx) {
		err := c.Atomic(func(c *Ctx) error {
			if got := c.Load(x).(int); got != 10 {
				t.Errorf("parent read %d", got)
			}
			c.Parallel(
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(x, 11) // writer's only active reader is its ancestor
						return nil
					})
				},
				func(c *Ctx) {},
			)
			if got := c.Load(x).(int); got != 11 {
				t.Errorf("parent re-read %d after child write", got)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats(); s.Aborted != 0 {
		t.Fatalf("ancestor-reader/descendant-writer aborted: %+v", s)
	}
	if x.Peek() != 11 {
		t.Fatalf("x = %v", x.Peek())
	}
}

func TestReadOwnWrite(t *testing.T) {
	rt := newRT(t, 2, func(c *Config) { c.SharedReads = true })
	x := NewObject(0)
	err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			c.Store(x, 7)
			if got := c.Load(x).(int); got != 7 {
				t.Errorf("read-own-write = %d", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReaderOfNonAncestorWriterConflicts(t *testing.T) {
	// Reading a value written by an active non-ancestor transaction must
	// conflict (the value is uncommitted foreign state).
	rt := newRT(t, 4, func(c *Config) { c.SharedReads = true })
	x := NewObject("clean")
	err := rt.Run(func(c *Ctx) {
		c.Parallel(
			func(c *Ctx) { // writer holds x dirty for a while
				_ = c.Atomic(func(c *Ctx) error {
					c.Store(x, "dirty")
					time.Sleep(20 * time.Millisecond)
					c.Store(x, "final")
					return nil
				})
			},
			func(c *Ctx) { // reader must never observe "dirty"
				time.Sleep(5 * time.Millisecond)
				_ = c.Atomic(func(c *Ctx) error {
					if got := c.Load(x).(string); got == "dirty" {
						t.Error("read uncommitted foreign write")
					}
					return nil
				})
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if x.Peek() != "final" {
		t.Fatalf("x = %v", x.Peek())
	}
}

func TestSharedReadsAuditInvariant(t *testing.T) {
	// The payoff workload: concurrent full-table audits (read-only) over
	// parallel transfers. With shared reads, audits never conflict with
	// each other and still observe consistent snapshots.
	rt := newRT(t, 4, func(c *Config) { c.SharedReads = true })
	const accounts = 16
	const total = accounts * 100
	objs := make([]*Object, accounts)
	for i := range objs {
		objs[i] = NewObject(100)
	}
	var audits, violations atomic.Int64
	err := rt.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), 4)
		for g := 0; g < 2; g++ {
			seed := g
			fns[g] = func(c *Ctx) {
				for i := 0; i < 50; i++ {
					from := (i*7 + seed) % accounts
					to := (i*13 + seed + 1) % accounts
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(objs[from], c.Load(objs[from]).(int)-1)
						c.Store(objs[to], c.Load(objs[to]).(int)+1)
						return nil
					})
				}
			}
		}
		for g := 2; g < 4; g++ {
			fns[g] = func(c *Ctx) {
				for i := 0; i < 30; i++ {
					_ = c.Atomic(func(c *Ctx) error {
						sum := 0
						for _, o := range objs {
							sum += c.Load(o).(int)
						}
						audits.Add(1)
						if sum != total {
							violations.Add(1)
						}
						return nil
					})
				}
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() > 0 {
		t.Fatalf("%d/%d audits inconsistent", violations.Load(), audits.Load())
	}
	sum := 0
	for _, o := range objs {
		sum += o.Peek().(int)
	}
	if sum != total {
		t.Fatalf("final sum %d", sum)
	}
}

func TestSharedReadsSerialMode(t *testing.T) {
	rt := newRT(t, 1, func(c *Config) { c.SharedReads = true; c.Serial = true })
	x := NewObject(5)
	err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			if got := c.Load(x).(int); got != 5 {
				t.Errorf("Load = %d", got)
			}
			c.Store(x, 6)
			return nil
		})
	})
	if err != nil || x.Peek() != 6 {
		t.Fatalf("err=%v x=%v", err, x.Peek())
	}
}
