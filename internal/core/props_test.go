package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// Property tests on the core bookkeeping structures.

// Undo splicing must preserve newest-first order and record counts across
// arbitrary child/parent interleavings.
func TestUndoSpliceProperties(t *testing.T) {
	f := func(parentWrites, childWrites uint8, interleave bool) bool {
		parent := &txDesc{}
		child := &txDesc{parent: parent}
		obj := NewObject(0)
		seq := uint64(1)
		var wantOrder []uint64

		push := func(tx *txDesc) {
			tx.pushUndo(obj, int(seq), seq)
			wantOrder = append(wantOrder, seq)
			seq++
		}
		pw, cw := int(parentWrites%8), int(childWrites%8)
		if interleave {
			for i := 0; i < pw || i < cw; i++ {
				if i < pw {
					push(parent)
				}
				if i < cw {
					push(child)
				}
			}
		} else {
			for i := 0; i < pw; i++ {
				push(parent)
			}
			for i := 0; i < cw; i++ {
				push(child)
			}
		}
		child.spliceInto(parent)
		if child.undoHead != nil || child.undoTail != nil {
			return false
		}
		// Collect the merged list; it must contain every record exactly
		// once, and the child's records must appear before any parent
		// record that is older than the splice point.
		seen := map[uint64]bool{}
		n := 0
		for r := parent.undoHead; r != nil; r = r.next {
			if seen[r.seq] {
				return false
			}
			seen[r.seq] = true
			n++
		}
		return n == len(wantOrder) && parent.writes == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// comNote bookkeeping: at most one live note per bitnum; cleaning drops
// exactly the published notes; merging is idempotent.
func TestComNoteProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 500; round++ {
		var notes []comNote
		used := map[bitvec.Bitnum]bool{}
		for i := 0; i < rng.Intn(10); i++ {
			n := comNote{bn: bitvec.Bitnum(rng.Intn(8)), ep: epoch.Epoch(rng.Intn(50))}
			notes = addNote(notes, n)
			used[n.bn] = true
		}
		// One note per bitnum.
		seen := map[bitvec.Bitnum]bool{}
		for _, n := range notes {
			if seen[n.bn] {
				t.Fatalf("duplicate note for %v: %+v", n.bn, notes)
			}
			seen[n.bn] = true
		}
		if len(notes) > len(used) {
			t.Fatalf("more notes than bitnums: %+v", notes)
		}
		// Merging a clone into itself changes nothing.
		merged := mergeNotes(cloneNotes(notes), notes)
		if len(merged) != len(notes) {
			t.Fatalf("self-merge changed size: %d != %d", len(merged), len(notes))
		}
	}
}

// cleanNotes drops exactly the notes whose bitnum is published at the note
// epoch.
func TestCleanNotesAgainstMasks(t *testing.T) {
	rt := newRT(t, 2, func(c *Config) { c.PublisherStartPaused = true })
	st := rt.st
	st.Masks.Or(5, bitvec.Of(1))
	st.Masks.Or(9, bitvec.Of(2))
	notes := []comNote{
		{bn: 1, ep: 5}, // published → dropped
		{bn: 1, ep: 6}, // not published at 6 → kept
		{bn: 2, ep: 9}, // published → dropped
		{bn: 3, ep: 5}, // bn 3 never published → kept
	}
	out := rt.cleanNotes(notes)
	if len(out) != 2 || out[0].ep != 6 || out[1].bn != 3 {
		t.Fatalf("cleanNotes = %+v", out)
	}
}

// Reader-set bookkeeping: recordReader refreshes within a transaction
// window and appends otherwise; retract removes exactly one entry.
func TestReaderSetProperties(t *testing.T) {
	var rs readerSet
	anc := bitvec.Of(0, 3)
	if !rs.recordReader(anc, 1, 5) {
		t.Fatal("first record must append")
	}
	if rs.recordReader(anc, 1, 7) {
		t.Fatal("same window must refresh, not append")
	}
	if len(rs.entries) != 1 || rs.entries[0].ep != 7 {
		t.Fatalf("entries = %+v", rs.entries)
	}
	// A later transaction with the same ancestor set (sequential sibling)
	// has a window beyond the entry's epoch → appends.
	if !rs.recordReader(anc, 10, 12) {
		t.Fatal("new window must append")
	}
	if len(rs.entries) != 2 {
		t.Fatalf("entries = %+v", rs.entries)
	}
	rs.retract(anc, 12)
	if len(rs.entries) != 1 {
		t.Fatalf("retract failed: %+v", rs.entries)
	}
	rs.retract(anc, 5) // matches the refreshed (ep=7) entry
	if len(rs.entries) != 0 {
		t.Fatalf("retract failed: %+v", rs.entries)
	}
	rs.retract(anc, 5) // no-op on empty
}

// Rollback with out-of-order records (the D16 interleaving) must restore
// the oldest saved value and remove exactly the recorded entries.
func TestRollbackOrderRobustness(t *testing.T) {
	rt := newRT(t, 2)
	_ = rt
	o := NewObject("v0")
	tx := &txDesc{}
	// Simulate: entry seq 1 (saved v0), then seq 2 (saved v1), but the
	// records arrive in splice order [older, newer] — i.e. the list head
	// is the OLDER record, as can happen after a merged victim's abort
	// splice races a sibling's commit splice.
	o.stack = append(o.stack,
		objEntry{anc: bitvec.Of(0), ep: 1, seq: 1},
		objEntry{anc: bitvec.Of(0, 1), ep: 2, seq: 2},
	)
	o.pushSeq = 2
	o.val = "v2"
	// Build list with head = seq 1 (older first — the adversarial order).
	tx.pushUndo(o, "v1", 2) // tail after next push
	tx.pushUndo(o, "v0", 1) // head
	ctx := &Ctx{rt: rt}
	ctx.rollback(tx)
	if got := o.Peek(); got != "v0" {
		t.Fatalf("rollback restored %v, want v0", got)
	}
	if o.StackDepth() != 0 {
		t.Fatalf("stack depth = %d", o.StackDepth())
	}
}

// Randomized rollback property: push k entries with shuffled record order;
// rollback must always restore the first saved value and empty the stack.
func TestRollbackShuffledRecordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := newRT(t, 2)
	for round := 0; round < 200; round++ {
		o := NewObject(0)
		k := 1 + rng.Intn(6)
		type rec struct {
			seq   uint64
			saved int
		}
		recs := make([]rec, k)
		for i := 0; i < k; i++ {
			seq := uint64(i + 1)
			o.stack = append(o.stack, objEntry{anc: bitvec.Of(0), ep: epoch.Epoch(i), seq: seq})
			recs[i] = rec{seq: seq, saved: i} // value before push i was i
		}
		o.pushSeq = uint64(k)
		o.val = k
		rng.Shuffle(k, func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
		tx := &txDesc{}
		for i := k - 1; i >= 0; i-- { // pushUndo prepends; list order = recs order
			tx.pushUndo(o, recs[i].saved, recs[i].seq)
		}
		ctx := &Ctx{rt: rt}
		ctx.rollback(tx)
		if got := o.Peek(); got != 0 {
			t.Fatalf("round %d: restored %v, want 0 (recs %+v)", round, got, recs)
		}
		if o.StackDepth() != 0 {
			t.Fatalf("round %d: stack depth %d", round, o.StackDepth())
		}
	}
}
