package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTraceRingWraparound: writing more events than a ring holds keeps
// the newest traceRingSize, in order, and the lap is reported as drops.
func TestTraceRingWraparound(t *testing.T) {
	r := &traceRing{}
	const n = traceRingSize*2 + 37
	for i := 0; i < n; i++ {
		r.record(&Event{TS: int64(i), Kind: EvBegin})
	}
	events, cursor, dropped := r.readFrom(0, nil)
	if want := uint64(n - traceRingSize); dropped != want {
		t.Fatalf("dropped = %d, want %d", dropped, want)
	}
	if len(events) != traceRingSize {
		t.Fatalf("read %d events, want %d", len(events), traceRingSize)
	}
	if cursor != n {
		t.Fatalf("cursor = %d, want %d", cursor, n)
	}
	for i, ev := range events {
		if want := uint64(n - traceRingSize + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
		if ev.TS != int64(ev.Seq) {
			t.Fatalf("event %d: TS %d does not match seq %d (torn read)", i, ev.TS, ev.Seq)
		}
	}
	// A second read from the advanced cursor sees nothing new.
	events, cursor2, dropped := r.readFrom(cursor, nil)
	if len(events) != 0 || dropped != 0 || cursor2 != cursor {
		t.Fatalf("re-read returned %d events, %d dropped, cursor %d", len(events), dropped, cursor2)
	}
}

// TestTraceRingConcurrentReaders: a reader polling with a cursor while
// the writer laps the ring repeatedly never sees a torn or reordered
// event — every event it observes is internally consistent and
// sequence numbers advance strictly.
func TestTraceRingConcurrentReaders(t *testing.T) {
	r := &traceRing{}
	const writes = 50 * traceRingSize
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			r.record(&Event{TS: int64(i), Root: uint64(i)})
		}
	}()
	var cursor, last uint64
	var seen int
	for {
		var events []Event
		events, cursor, _ = r.readFrom(cursor, nil)
		for _, ev := range events {
			if ev.TS != int64(ev.Seq) || ev.Root != ev.Seq {
				t.Fatalf("torn event: seq=%d ts=%d root=%d", ev.Seq, ev.TS, ev.Root)
			}
			if seen > 0 && ev.Seq <= last {
				t.Fatalf("sequence went backwards: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
			seen++
		}
		select {
		case <-done:
			if seen == 0 {
				t.Fatal("reader saw nothing")
			}
			return
		default:
		}
	}
}

// TestTraceLifecycleEvents: a traced nested transaction tree emits
// begin/commit events with consistent root tickets and correct depths,
// and flipping tracing off silences the recorder.
func TestTraceLifecycleEvents(t *testing.T) {
	rt := newRT(t, 4)
	rt.EnableTracing(true)
	obj := NewObject(0)
	err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			c.Store(obj, 1)
			c.Parallel(
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error { c.Store(obj, 2); return nil })
				},
				func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						return c.Atomic(func(c *Ctx) error { c.Load(obj); return nil })
					})
				},
			)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	events, _ := rt.TraceRead(nil)
	var begins, commits int
	roots := make(map[uint64]bool)
	maxDepth := uint8(0)
	for _, ev := range events {
		switch ev.Kind {
		case EvBegin:
			begins++
		case EvCommit:
			commits++
		}
		if ev.Root == 0 {
			t.Fatalf("event without a root ticket: %+v", ev)
		}
		roots[ev.Root] = true
		if ev.Depth > maxDepth {
			maxDepth = ev.Depth
		}
	}
	// Root + 2 parallel children + 1 grandchild = 4 begins, all committed.
	if begins < 4 || commits < 4 {
		t.Fatalf("begins=%d commits=%d, want >= 4 each (events: %d)", begins, commits, len(events))
	}
	if len(roots) != 1 {
		t.Fatalf("one root lineage expected, tickets seen: %v", roots)
	}
	if maxDepth < 2 {
		t.Fatalf("max depth %d, want >= 2 (nested atomic inside parallel child)", maxDepth)
	}
	if ev, _ := rt.TraceStats(); ev == 0 {
		t.Fatal("TraceStats reports zero events")
	}

	// Off: no further events.
	rt.EnableTracing(false)
	before, _ := rt.TraceStats()
	if err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error { c.Store(obj, 3); return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if after, _ := rt.TraceStats(); after != before {
		t.Fatalf("recorder grew while disabled: %d -> %d", before, after)
	}
}

// TestTraceConcurrentWriters: many goroutines tracing concurrently
// never lose an event (no drops at this volume) and every recorded
// event is drained exactly once across polls.
func TestTraceConcurrentWriters(t *testing.T) {
	rt := newRT(t, 4)
	rt.EnableTracing(true)
	objs := make([]*Object, 16)
	for i := range objs {
		objs[i] = NewObject(0)
	}
	var writers, drainer sync.WaitGroup
	var stop atomic.Bool
	var drained []Event
	cursors := make([]uint64, rt.TraceRings())
	drainer.Add(1)
	go func() { // concurrent drainer keeps the rings from lapping
		defer drainer.Done()
		for !stop.Load() {
			var ev []Event
			ev, cursors = rt.TraceRead(cursors)
			drained = append(drained, ev...)
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 4; g++ {
		g := g
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				_ = rt.Run(func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(objs[(g*7+i)%len(objs)], i)
						return nil
					})
				})
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	drainer.Wait()
	var tail []Event
	tail, _ = rt.TraceRead(cursors)
	drained = append(drained, tail...)

	recorded, dropped := rt.TraceStats()
	if dropped != 0 {
		t.Fatalf("%d events dropped at this volume", dropped)
	}
	if uint64(len(drained)) != recorded {
		t.Fatalf("drained %d events, recorder counted %d", len(drained), recorded)
	}
	// Per (ring, seq) uniqueness: no event delivered twice.
	seen := make(map[string]bool, len(drained))
	for _, ev := range drained {
		key := fmt.Sprintf("%d/%d/%d", ev.Root, ev.Seq, ev.TS)
		if seen[key] {
			t.Fatalf("event delivered twice: %+v", ev)
		}
		seen[key] = true
	}
}

// TestTraceAbortAttribution: a conflict abort's event carries the label
// of the object that failed validation, at the right depth.
func TestTraceAbortAttribution(t *testing.T) {
	rt := newRT(t, 2, func(c *Config) { c.SpinRetries = 1 })
	rt.EnableTracing(true)
	hot := NewObject(0)
	hot.SetLabel("m:hot/0")
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = rt.Run(func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(hot, c.Load(hot).(int)+1)
						return nil
					})
				})
			}
		}()
	}
	wg.Wait()
	events := rt.TraceSnapshot()
	var attributed int
	for _, ev := range events {
		if ev.Kind == EvAbort && ev.Obj == "m:hot/0" {
			attributed++
		}
	}
	if rt.Stats().Aborted > 0 && attributed == 0 {
		t.Fatalf("aborts happened (%d) but none attributed to the hot object", rt.Stats().Aborted)
	}
	if rt.Stats().Aborted == 0 {
		t.Skip("no contention this run (single-core scheduling); nothing to attribute")
	}
}

// TestCrisisHookAndEvent: a forced cross-root livelock engages the
// crisis token, which fires the installed hook and records an EvCrisis
// event — the dump-on-crisis trigger the server builds on.
func TestCrisisHookAndEvent(t *testing.T) {
	rt := newRT(t, 2, func(c *Config) {
		c.SpinRetries = 1
		c.CrisisAborts = 1 // any root conflict abort engages the breaker
		c.CrisisBackoff = 50 * time.Microsecond
	})
	rt.EnableTracing(true)
	var hookCalls atomic.Int64
	rt.SetCrisisHook(func() { hookCalls.Add(1) })
	hot := NewObject(0)
	hot.SetLabel("c:crisis/0")
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats().Crises == 0 && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					_ = rt.Run(func(c *Ctx) {
						_ = c.Atomic(func(c *Ctx) error {
							c.Store(hot, c.Load(hot).(int)+1)
							return nil
						})
					})
				}
			}()
		}
		wg.Wait()
	}
	if rt.Stats().Crises == 0 {
		t.Skip("no crisis provoked on this machine (no cross-root conflicts observed)")
	}
	if hookCalls.Load() == 0 {
		t.Fatal("crisis engaged but the hook never fired")
	}
	var crisisEvents int
	for _, ev := range rt.TraceSnapshot() {
		if ev.Kind == EvCrisis {
			crisisEvents++
		}
	}
	if crisisEvents == 0 {
		t.Fatal("crisis engaged but no EvCrisis event recorded")
	}
}

// BenchmarkAtomicTracingOff measures the untraced hot path — the cost
// the compiled-in instrumentation adds when the flag is off (one
// atomic load per lifecycle site). Compare with BenchmarkAtomicTracingOn.
func BenchmarkAtomicTracingOff(b *testing.B) { benchAtomicTrace(b, false) }

// BenchmarkAtomicTracingOn measures the same loop with recording on.
func BenchmarkAtomicTracingOn(b *testing.B) { benchAtomicTrace(b, true) }

func benchAtomicTrace(b *testing.B, on bool) {
	rt, err := New(Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rt.EnableTracing(on)
	obj := NewObject(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.Run(func(c *Ctx) {
			_ = c.Atomic(func(c *Ctx) error {
				c.Store(obj, i)
				return nil
			})
		})
	}
}

// TestTraceSampling: with a lifecycle sampling divisor of N, only ~1/N
// root lineages record begin/commit events, while conflict aborts are
// still recorded for EVERY root — attribution must not lose data to
// sampling (D38).
func TestTraceSampling(t *testing.T) {
	rt := newRT(t, 2)
	rt.EnableTracing(true)
	rt.SetTraceSampling(4)
	if got := rt.TraceSampling(); got != 4 {
		t.Fatalf("TraceSampling = %d, want 4", got)
	}
	obj := NewObject(0)
	const roots = 400
	for i := 0; i < roots; i++ {
		if err := rt.Run(func(c *Ctx) {
			_ = c.Atomic(func(c *Ctx) error { c.Store(obj, i); return nil })
		}); err != nil {
			t.Fatal(err)
		}
	}
	events, _ := rt.TraceRead(nil)
	sampledRoots := make(map[uint64]bool)
	for _, ev := range events {
		if ev.Kind == EvBegin {
			sampledRoots[ev.Root] = true
		}
	}
	// Every 4th ticket records: expect roots/4, give or take the tickets
	// the ring retained (no wraparound at this volume: 2 events/root).
	if n := len(sampledRoots); n < roots/8 || n > roots/2 {
		t.Fatalf("sampled %d of %d roots, want ~%d", n, roots, roots/4)
	}

	// Conflicts bypass sampling: hammer one object from two goroutines
	// and demand abort events even though 3 in 4 lineages are unsampled.
	rt2 := newRT(t, 2, func(c *Config) { c.SpinRetries = 1 })
	rt2.EnableTracing(true)
	rt2.SetTraceSampling(1 << 20) // effectively: no lifecycle events at all
	hot := NewObject(0)
	hot.SetLabel("m:hot/0")
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = rt2.Run(func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Store(hot, c.Load(hot).(int)+1)
						return nil
					})
				})
			}
		}()
	}
	wg.Wait()
	conflicts, _ := rt2.TraceReadConflicts(nil)
	var aborts int
	for _, ev := range conflicts {
		if ev.Kind == EvAbort {
			if ev.Obj != "m:hot/0" {
				t.Fatalf("conflict event lost its attribution: %+v", ev)
			}
			aborts++
		}
	}
	if aborts == 0 {
		t.Fatal("no abort events in the conflict rings under full sampling skip")
	}
	// And the lifecycle rings hold no begin/commit noise for rt2.
	lifecycle, _ := rt2.TraceRead(nil)
	for _, ev := range lifecycle {
		if ev.Kind == EvBegin || ev.Kind == EvCommit {
			t.Fatalf("unsampled lineage leaked a lifecycle event: %+v", ev)
		}
	}
}
