package core

import (
	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// Shared read accesses — the paper's first "future work" item (§9): "one
// wants to optimize [read] accesses by allowing multiple (possibly
// conflicting) transactions to simultaneously read from a common object.
// The main consequence is that the conflict detection test must be
// extended to answer ancestor queries between one transaction and a set of
// multiple transactions."
//
// This file implements that extension (Config.SharedReads). Each object
// additionally carries a reader set: (ancestor-set, epoch) entries for the
// transactions that read it. The rules generalize the paper's hierarchy:
//
//   - READ by t: allowed iff the topmost write entry's active ancestors
//     are a subset of t's ancestors (the object's current value belongs to
//     an ancestor of t, or to nobody). Readers never conflict with
//     readers. The read records a reader entry; no undo is needed.
//
//   - WRITE by t: the paper's test on the write stack, plus every active
//     reader must be an ancestor of t. The set-vs-one ancestor query is
//     answered with the same bit-vector algebra: ∪ᵢ active(ancᵢ) ⊆ t.anc
//     ⟺ ∀i active(ancᵢ) ⊆ t.anc, and each active(ancᵢ) is obtained with
//     the usual committed-mask/comDesc filtering at the reader's epoch, so
//     the per-reader cost is O(1) and depth-independent.
//
// Reader entries are removed lazily: once a reader's ancestor set filters
// to empty (everyone committed and published) it is dropped during the
// next write's scan. An *aborted* reader's entry lingers until its bitnum
// is discard-published — a false write-conflict window, never a safety
// problem, mirroring the lazy treatment of write entries.
type readerSet struct {
	entries []objEntry
}

// recordReader notes that the transaction with the given live ancestor set
// read the object at epoch ep. An existing entry by the same transaction
// (same ancestor set, epoch within its window) is refreshed in place;
// appended reports whether a new entry was created (the caller then logs a
// retraction record so an abort removes it, D16).
func (rs *readerSet) recordReader(anc bitvec.Vec, beginEp, ep epoch.Epoch) (appended bool) {
	for i := range rs.entries {
		e := &rs.entries[i]
		if e.anc == anc && beginEp <= e.ep && e.ep <= ep {
			e.ep = ep
			return false
		}
	}
	rs.entries = append(rs.entries, objEntry{anc: anc, ep: ep})
	return true
}

// retract removes one reader entry matching the retraction record: same
// ancestor set, epoch at or above the recorded one (in-transaction
// refreshes only raise it).
func (rs *readerSet) retract(anc bitvec.Vec, ep epoch.Epoch) {
	for i := range rs.entries {
		e := &rs.entries[i]
		if e.anc == anc && e.ep >= ep {
			rs.entries[i] = rs.entries[len(rs.entries)-1]
			rs.entries = rs.entries[:len(rs.entries)-1]
			return
		}
	}
}

// checkWriters filters the reader set and reports whether every active
// reader is an ancestor of the writer (refAnc). Dead entries are dropped
// as a side effect. Caller holds the object lock.
func (c *Ctx) readersAllAncestors(rs *readerSet, refAnc bitvec.Vec) bool {
	if len(rs.entries) == 0 {
		return true
	}
	ok := true
	kept := rs.entries[:0]
	for _, e := range rs.entries {
		active := c.activeAncestors(e.anc, e.ep)
		if active.Empty() {
			continue // reader committed and published: drop
		}
		kept = append(kept, e)
		if !active.SubsetOf(refAnc) {
			ok = false
		}
	}
	rs.entries = kept
	return ok
}

// tryRead is the shared-read counterpart of tryAccess: it validates the
// read against the write stack and records the reader entry. Returns false
// on conflict. Caller holds the object lock.
func (c *Ctx) tryRead(o *Object, tx *txDesc) bool {
	if n := len(o.stack); n > o.head {
		top := &o.stack[n-1]
		// Reading our own (or an ancestor's merged) write: covered by the
		// write entry itself, no reader entry needed.
		if top.anc == c.ancBase && tx.beginEp <= top.ep && top.ep <= c.ep {
			return true
		}
		xanc := c.activeAncestors(top.anc, top.ep)
		if !xanc.Empty() {
			c.refreshAnc()
			if !xanc.SubsetOf(c.ancBase) {
				return false // current value belongs to a non-ancestor
			}
		}
	}
	if o.readers.recordReader(c.ancBase, tx.beginEp, c.ep) {
		tx.pushReadUndo(o, c.ancBase, c.ep)
	}
	return true
}
