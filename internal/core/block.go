package core

import (
	"sync"
	"sync/atomic"

	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// block encapsulates a program fragment that a worker slot can run
// (paper §3). A block is created waiting or enqueued, and runs exactly
// once. The bitnum is assigned at dispatch time ("steal-time", §3.2) and
// is used for every transaction the block initiates.
type block struct {
	program func(*Ctx)

	// baseTx is the transaction in which the block starts (paper b.baseTx);
	// nil when the block runs outside any transaction.
	baseTx *txDesc

	// minEp is the minimum epoch at which the adopting context must run
	// (paper b.minEp): the forker's epoch when the block was created.
	minEp epoch.Epoch

	// succ is the join of the continuation this block precedes, nil for a
	// root block.
	succ *join

	// comDesc carries the forker's committed-descendant notes into the
	// child context (an extension over the paper: the notes are safe in
	// any context, see DESIGN.md D12).
	comDesc []comNote

	// done receives the root block's completion; nil for non-root blocks.
	done chan rootResult

	// Trace identity inherited from the forking context (D35): the root
	// ticket of the enclosing root transaction, the server-stamped
	// batch/shard, and the current work tag. Copied into the adopting
	// context so a forked child's events stay attributable to the same
	// request lineage.
	traceRoot  uint64
	traceBatch uint64
	traceTS    int64
	traceShard uint8
	traceTag   string
	traceSkip  bool

	// Dispatch-time state.
	bn       bitvec.Bitnum // reserved bitnum; None while queued or borrowed
	bnMinEp  epoch.Epoch   // minimum epoch of the reserved bitnum
	borrowed bool          // runs under baseTx's bitnum

	// bnDiscarded records that the block's bitnum has been discarded —
	// either by its own finish or unilaterally by a finishing sibling
	// (§6.2). The CAS winner performs the discard, so it happens exactly
	// once.
	bnDiscarded atomic.Bool
}

// rootResult carries a root block's outcome back to Run.
type rootResult struct {
	panicVal any // non-nil if the root program panicked
}

// join is the continuation-block bookkeeping for one parallel statement
// (paper §3.1: the inner blocks are the "preceding blocks" of the
// continuation). The forking context parks on resume; the last finishing
// child sends the payload, handing over its worker slot.
type join struct {
	mu sync.Mutex

	// unfinished counts preceding blocks that have not finished
	// (paper b.precBlocks). Atomic so dispatch can take the lock-free
	// "am I the last one" fast path: a value of 1 observed by the only
	// remaining block is stable, because finished siblings stay finished.
	unfinished atomic.Int32

	// precBitnums holds the reserved bitnums of dispatched, unfinished
	// preceding blocks (paper b.precBitnums).
	precBitnums bitvec.Vec

	// live maps those bitnums to their blocks, for the unilateral discard
	// of the last remaining sibling (§6.2).
	live []*block

	// minEp is the minimum epoch for the continuation: the maximum of the
	// fork-time epoch and every finishing block's epoch (paper
	// finishBlock line 8).
	minEp epoch.Epoch

	// comDesc accumulates committed-descendant notes from finishing
	// children (paper §5.2).
	comDesc []comNote

	// panicVal holds the first panic raised by a child block, re-raised
	// by the continuation.
	panicVal any
	panicked bool

	resume chan joinPayload
}

// joinPayload is what the last finishing child hands to the parked
// continuation: its worker slot plus the accumulated join state.
type joinPayload struct {
	slot    *slot
	minEp   epoch.Epoch
	comDesc []comNote
	pval    any
	ppanic  bool
}

func newJoin(children int, forkEp epoch.Epoch) *join {
	j := &join{minEp: forkEp, resume: make(chan joinPayload, 1)}
	j.unfinished.Store(int32(children))
	return j
}

// removeLive deletes the block holding bn from the live list.
func (j *join) removeLive(bn bitvec.Bitnum) {
	for i, b := range j.live {
		if b.bn == bn {
			j.live[i] = j.live[len(j.live)-1]
			j.live = j.live[:len(j.live)-1]
			return
		}
	}
}

// comNote records one committed-but-possibly-unpublished descendant
// (paper §5.2 comDesc). The note is valid — i.e. the bitnum may be ignored
// in entry ancestor sets — until the committed mask of ep contains bn,
// which happens during the discard publication that precedes any re-use of
// bn. Keeping the epoch per note (rather than one epoch per block as in
// the paper's Fig. 5) is required for joins with several children whose
// finish epochs differ (DESIGN.md D12).
type comNote struct {
	bn bitvec.Bitnum
	ep epoch.Epoch
}

// addNote appends a note, first dropping any published (stale) note for
// the same bitnum, keeping at most one live note per bitnum.
func addNote(notes []comNote, n comNote) []comNote {
	for i := range notes {
		if notes[i].bn == n.bn {
			notes[i] = n
			return notes
		}
	}
	return append(notes, n)
}

// mergeNotes folds src into dst.
func mergeNotes(dst, src []comNote) []comNote {
	for _, n := range src {
		dst = addNote(dst, n)
	}
	return dst
}

// cloneNotes copies a note slice (forks pass snapshots to children).
func cloneNotes(notes []comNote) []comNote {
	if len(notes) == 0 {
		return nil
	}
	out := make([]comNote, len(notes))
	copy(out, notes)
	return out
}
