package core

import (
	"testing"
)

// Bare forks — Parallel statements inside a transaction whose inner blocks
// do not start transactions of their own before forking again — put
// several simultaneously live joins under one base transaction. The §6.2
// single-child optimizations must consult the transaction-wide live-block
// count, not one join's (DESIGN.md D15); before that fix, the last block
// of one join could borrow the base transaction's identity while blocks of
// sibling joins were still active, making its entries look ancestor-owned
// to everyone and losing updates without a single abort.

// TestBareForkTreeNoLostUpdates is the regression test for D15: a 3-wide,
// 2-deep tree of bare forks whose nine leaves all OR their bit into one
// object under a single top-level transaction.
func TestBareForkTreeNoLostUpdates(t *testing.T) {
	const width, depth = 3, 2
	const leaves = 9
	for seed := int64(1); seed <= 300; seed++ {
		rt := newRT(t, 4, func(c *Config) { c.Seed = seed })
		obj := NewObject(uint64(0))
		var build func(c *Ctx, d, base int)
		build = func(c *Ctx, d, base int) {
			if d == 0 {
				id := base
				if err := c.Atomic(func(c *Ctx) error {
					v := c.Load(obj).(uint64)
					c.Store(obj, v|(1<<uint(id)))
					return nil
				}); err != nil {
					t.Error(err)
				}
				return
			}
			fns := make([]func(*Ctx), width)
			for i := range fns {
				i := i
				fns[i] = func(c *Ctx) { build(c, d-1, base*width+i) }
			}
			c.Parallel(fns...) // bare fork: no enclosing Atomic at this level
		}
		if err := rt.Run(func(c *Ctx) {
			_ = c.Atomic(func(c *Ctx) error {
				build(c, depth, 0)
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		if got := obj.Peek().(uint64); got != (1<<leaves)-1 {
			t.Fatalf("seed %d: lost updates: got %b want %b (stats %+v)",
				seed, got, uint64(1<<leaves)-1, rt.Stats())
		}
		rt.Close()
	}
}

// TestBareForkSequentialJoinsStillBorrow checks the optimization still
// fires in the legitimate case: strictly sequential forks under one
// transaction leave exactly one live block for the last child of each
// join, which may borrow.
func TestBareForkSequentialJoinsStillBorrow(t *testing.T) {
	rt := newRT(t, 2)
	x := NewObject(0)
	err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			for round := 0; round < 20; round++ {
				c.Parallel(
					func(c *Ctx) {
						_ = c.Atomic(func(c *Ctx) error {
							c.Store(x, c.Load(x).(int)+1)
							return nil
						})
					},
					func(c *Ctx) {
						_ = c.Atomic(func(c *Ctx) error {
							c.Store(x, c.Load(x).(int)+1)
							return nil
						})
					},
				)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Peek().(int); got != 40 {
		t.Fatalf("x = %d, want 40", got)
	}
	// With two children per join on a small runtime, steal-time borrowing
	// opportunities are common; make sure the mechanism still engages
	// somewhere across rounds (it is timing-dependent, so only require
	// the counters to be self-consistent if zero).
	t.Logf("stats: %+v", rt.Stats())
}

// TestLiveBlockAccounting pins the counter's lifecycle directly.
func TestLiveBlockAccounting(t *testing.T) {
	rt := newRT(t, 4)
	err := rt.Run(func(c *Ctx) {
		_ = c.Atomic(func(c *Ctx) error {
			tx := c.cur
			if got := tx.liveBlocks.Load(); got != 0 {
				t.Errorf("fresh tx liveBlocks = %d", got)
			}
			c.Parallel(
				func(cc *Ctx) {
					if got := tx.liveBlocks.Load(); got < 1 || got > 2 {
						t.Errorf("inside fork: liveBlocks = %d", got)
					}
				},
				func(*Ctx) {},
			)
			if got := tx.liveBlocks.Load(); got != 0 {
				t.Errorf("after join: liveBlocks = %d", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
