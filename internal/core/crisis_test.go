package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCrisisBreakerCrossRootWriteStorm reproduces the cross-root
// livelock that nested escalation cannot resolve: several concurrent
// root transactions, each a straight-line write burst over the same
// small object set, abort each other on every attempt. The exponential
// backoff tops out at BackoffMax — comparable to one attempt's
// execution time — so staggering never separates them and, without the
// crisis breaker, the group can spin indefinitely (observed in practice
// as the group-commit pipelining cliff). With the breaker, one root
// takes the crisis token, the rest quiesce, and the storm drains. The
// test asserts completion within a generous wall-clock bound and that
// the token is free again afterward.
func TestCrisisBreakerCrossRootWriteStorm(t *testing.T) {
	const (
		roots   = 4
		objects = 32
		rounds  = 20
	)
	rt := newRT(t, 4, func(c *Config) {
		// Engage quickly so the test exercises the breaker, not just
		// survives by luck of the backoff jitter.
		c.CrisisAborts = 4
		c.CrisisBackoff = 500 * time.Microsecond
	})
	objs := make([]*Object, objects)
	for i := range objs {
		objs[i] = NewObject(0)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < roots; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				// Each attempt writes every object in a fresh random
				// order, split across two nested parallel children —
				// the group-commit batch shape that livelocks in
				// practice. Any two concurrent roots overlap everywhere.
				order := rng.Perm(objects)
				lo, hi := order[:objects/2], order[objects/2:]
				bump := func(idx []int) func(*Ctx) {
					return func(c *Ctx) {
						_ = c.Atomic(func(c *Ctx) error {
							for _, j := range idx {
								c.Store(objs[j], c.Load(objs[j]).(int)+1)
							}
							return nil
						})
					}
				}
				err := rt.Run(func(c *Ctx) {
					_ = c.Atomic(func(c *Ctx) error {
						c.Parallel(bump(lo), bump(hi))
						return nil
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r + 1))
	}
	go func() { wg.Wait(); close(done) }()

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("write storm did not drain: cross-root livelock (crisis breaker ineffective)")
	}

	if rt.crisisToken.Load() {
		t.Fatal("crisis token still held after all roots finished")
	}
	total := 0
	for _, o := range objs {
		total += o.Peek().(int)
	}
	// Every root increments every object once per round.
	if want := roots * rounds * objects; total != want {
		t.Fatalf("lost updates: total = %d, want %d", total, want)
	}
	if st := rt.Stats(); st.Crises > 0 {
		t.Logf("breaker engaged %d time(s), %d aborts over %d commits",
			st.Crises, st.Aborted, st.Committed)
	}
}
