package core

import (
	"time"

	"pnstm/internal/bitvec"
	"pnstm/internal/epoch"
)

// Ctx is an execution context: the paper's "thread Ti" state (§3) bound to
// whatever worker slot currently runs this block. It carries the current
// epoch, the current transaction, the live (erased) ancestor set and the
// committed-descendant notes.
//
// A Ctx is confined to one goroutine; contexts are handed to block
// programs and must not be shared or retained past the block's lifetime.
type Ctx struct {
	rt    *Runtime
	block *block
	slot  *slot

	// ep is the context's current epoch (paper Ti.ep). Monotone.
	ep epoch.Epoch

	// bn is the bitnum this context's transactions use: the block's
	// reserved bitnum, or the base transaction's after borrowing.
	bn bitvec.Bitnum

	// baseTx is the transaction in which the current block-level code
	// runs; cur is the innermost active transaction (== baseTx outside
	// inner atomics). Both may be nil at a root block.
	baseTx *txDesc
	cur    *txDesc

	// ancBase is the live ancestor set of cur (or of baseTx/nothing when
	// no inner transaction is active): the begin-time snapshot with every
	// erasure applied (§6.2). Entries are pushed with this value.
	ancBase bitvec.Vec

	// comDesc holds the committed-but-possibly-unpublished descendant
	// notes visible to this context (paper §5.2).
	comDesc []comNote

	// panicVal carries a panic out of the block program to finishBlock.
	panicVal any

	// aborts counts consecutive aborts of the innermost transaction, for
	// backoff and slot yielding.
	aborts int

	// Trace identity (D35): traceRoot is the runtime-wide ticket of the
	// current root-transaction lineage (assigned at the first traced root
	// begin, inherited by forked blocks), traceBatch/traceShard are
	// server stamps, and traceTag labels the current unit of work (the
	// server stamps each request's structure:key). traceTS caches the
	// root begin's wall clock so begin/commit events in the subtree skip
	// the clock read, and traceSkip marks a root the lifecycle sampler
	// chose not to record (conflict events record regardless, D38). All
	// of these ride into forked blocks via Parallel.
	traceRoot  uint64
	traceBatch uint64
	traceTS    int64
	traceShard uint8
	traceTag   string
	traceSkip  bool
}

// Epoch returns the context's current epoch (diagnostics).
func (c *Ctx) Epoch() uint64 { return uint64(c.ep) }

// InTx reports whether an atomic block is active.
func (c *Ctx) InTx() bool { return c.cur != nil }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// adoptSlot binds the context to a worker slot and raises its epoch to at
// least minEp, applying the §6.2 erase across the move. extraErase lists
// additional epochs whose committed masks must be subtracted — in
// particular the block's minimum epoch at dispatch, which is what catches
// unilaterally discarded ancestor bitnums when the dispatch epoch jumps
// past their publication horizon (DESIGN.md D11).
func (c *Ctx) adoptSlot(sl *slot, minEp epoch.Epoch, extraErase ...epoch.Epoch) {
	target := epoch.Max(c.ep, minEp)
	eps := append(extraErase, c.ep, target)
	c.ancBase = c.rt.st.Erase(c.ancBase, eps...)
	c.ep = target
	c.slot = sl
	sl.publish(target)
}

// advanceEpoch moves the context one epoch forward (paper commitTx line 2),
// running the §6.2 erase first.
func (c *Ctx) advanceEpoch() {
	if !c.rt.cfg.Serial {
		c.ancBase = c.rt.st.Erase(c.ancBase, c.ep, c.ep+1)
	}
	c.ep++
	if c.slot != nil {
		c.slot.publish(c.ep)
	}
}

// refreshAnc re-applies the erase to the live ancestor set at the current
// epoch (used on the conflict-test slow path, D11).
func (c *Ctx) refreshAnc() {
	c.ancBase = c.rt.st.Erase(c.ancBase, c.ep)
}

// noteBlockPanic records a panic raised by the block program so
// finishBlock can propagate it through the join.
func (c *Ctx) noteBlockPanic(v any) { c.panicVal = v }

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

// Atomic runs fn as a transaction: a child of the block's base transaction,
// or a root transaction when none is active. Conflicts roll the transaction
// back and retry fn with randomized backoff; a non-nil error from fn aborts
// the transaction (all its writes, including those of already committed
// descendants, are undone) and is returned.
//
// An Atomic inside an Atomic is the paper's footnote-3 case: it runs as a
// single-child transaction borrowing the parent's bitnum, exactly as if the
// program had been rewritten atomic{ parallel{ atomic{...} } }.
func (c *Ctx) Atomic(fn func(*Ctx) error) error {
	if c.cur != c.baseTx {
		// Nested atomic: re-base so the new transaction is a child of the
		// innermost one (implicit single-child parallel block).
		saved := c.baseTx
		savedAborts := c.aborts
		c.baseTx = c.cur
		c.rt.stats.inlineChildren.Add(1)
		// Restore deferred: an escalation panic from the recursive call
		// unwinds through this frame into the enclosing Atomic's recover.
		// baseTx must come back so the enclosing retry re-bases correctly,
		// and the consecutive-abort counter is per Atomic INVOCATION but
		// lives on the shared Ctx — the recursive call resets it, and
		// without the restore an outer Atomic whose body enters a nested
		// Atomic on every attempt can never accumulate aborts, absorbing
		// its children's escalations forever instead of propagating the
		// conflict toward the root.
		defer func() {
			c.baseTx = saved
			c.aborts = savedAborts
		}()
		return c.Atomic(fn)
	}
	c.aborts = 0
	crisis := false
	defer func() {
		if crisis {
			c.rt.crisisToken.Store(false)
		}
	}()
	for {
		tx := c.begin()
		err, conflicted, confObj, pval, panicked := c.runBody(fn)
		switch {
		case conflicted:
			c.rollback(tx)
			c.popTx(tx)
			c.rt.stats.aborted.Add(1)
			c.aborts++
			if c.rt.tracing() {
				c.traceEvent(EvAbort, tx.depth, objLabel(confObj))
			}
			if c.mergedVictim() && tx.parent != nil {
				// This block's bitnum was unilaterally discarded: its
				// transactions run under the base transaction's identity,
				// so siblings may already have read its (now undone)
				// writes. Retrying locally could commit tainted state
				// elsewhere — the only consistent resolution is to abort
				// the whole base transaction (D16).
				c.rt.stats.escalations.Add(1)
				if c.rt.tracing() {
					c.traceEvent(EvEscalate, tx.depth, objLabel(confObj))
				}
				panic(conflictSignal{obj: confObj})
			}
			if tx.parent != nil && c.aborts >= c.rt.cfg.EscalateAfterAborts {
				// Nesting-aware contention management: retrying here can
				// deadlock when the conflicting entry belongs to another
				// parked parent's lineage (its committed child's write).
				// Propagate the conflict upward instead — the parent's
				// Atomic catches the signal (directly for inline children,
				// via the join's panic channel for forked blocks), rolls
				// back everything its subtree committed, and retries the
				// whole fork with backoff.
				c.rt.stats.escalations.Add(1)
				c.aborts = 0
				if c.rt.tracing() {
					c.traceEvent(EvEscalate, tx.depth, objLabel(confObj))
				}
				panic(conflictSignal{obj: confObj})
			}
			if tx.parent == nil && !crisis && c.aborts >= c.rt.cfg.CrisisAborts {
				// Cross-root livelock breaker: concurrent roots with
				// overlapping write sets can abort each other past any
				// backoff BackoffMax can provide. Race for the runtime's
				// crisis token; the winner retries at full speed while
				// every loser quiesces until the token frees — one sleep
				// per attempt is not enough, because a single re-executing
				// competitor subtree is active for long enough to keep
				// aborting the holder. The wait is bounded (a stuck holder
				// cannot wedge losers forever) and each exit re-contends,
				// so the storm drains one committing root at a time.
				if c.rt.crisisToken.CompareAndSwap(false, true) {
					crisis = true
					c.rt.stats.crises.Add(1)
					if c.rt.tracing() {
						c.traceEvent(EvCrisis, tx.depth, objLabel(confObj))
					}
					if hook := c.rt.crisisHook; hook != nil {
						hook()
					}
				} else {
					// The bound exists only for a pathologically stuck
					// holder. It must dwarf the cost of one loser attempt
					// (tens of ms of nested churn before the root unwinds):
					// with a short bound, a handful of losers re-attacking
					// every bound keeps the holder from ever running alone.
					for waited := time.Duration(0); c.rt.crisisToken.Load() &&
						waited < 512*c.rt.cfg.CrisisBackoff; {
						waited += c.crisisSleep()
					}
					continue
				}
			}
			c.backoff()
		case panicked:
			c.rollback(tx)
			c.popTx(tx)
			c.rt.stats.userAbort.Add(1)
			panic(pval)
		case err != nil:
			c.rollback(tx)
			c.popTx(tx)
			c.rt.stats.userAbort.Add(1)
			return err
		default:
			c.commit(tx)
			return nil
		}
	}
}

// runBody invokes fn, translating a conflictSignal unwind into the
// conflicted flag (keeping the conflicting object for attribution) and
// capturing user panics.
func (c *Ctx) runBody(fn func(*Ctx) error) (err error, conflicted bool, confObj *Object, pval any, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(conflictSignal); ok {
				conflicted, confObj = true, sig.obj
				return
			}
			pval, panicked = r, true
		}
	}()
	err = fn(c)
	return
}

// begin starts a transaction (paper beginTx): O(1), no locking.
func (c *Ctx) begin() *txDesc {
	// A remote (unilateral) discard of the block's bitnum switches every
	// subsequent transaction to borrowed mode (§6.2).
	if c.block != nil && !c.block.borrowed && c.baseTx != nil &&
		c.bn != c.baseTx.bitnum && c.block.bnDiscarded.Load() {
		c.bn = c.baseTx.bitnum
		c.rt.stats.borrowSwitch.Add(1)
	}
	borrowed := c.cur != nil && c.cur.bitnum == c.bn
	anc := c.ancBase
	if borrowed {
		// Distinct epochs separate a borrowed child's pushes from its
		// parent's, preserving per-child undo granularity (D4).
		c.advanceEpoch()
		// A borrowed transaction's identity IS its parent's: use the live
		// ancestor set as-is. Re-adding the bitnum would resurrect it if
		// the parent's bitnum was unilaterally discarded and erased (D11).
		anc = c.ancBase
	} else {
		// A freshly reserved bitnum is never stale; add it.
		anc = c.ancBase.Add(c.bn)
	}
	tx := &txDesc{
		bitnum:   c.bn,
		anc:      anc,
		beginEp:  c.ep,
		parent:   c.cur,
		borrowed: borrowed,
	}
	if tx.parent != nil && tx.parent.depth < 255 {
		tx.depth = tx.parent.depth + 1
	}
	c.cur = tx
	c.ancBase = tx.anc
	c.rt.stats.begun.Add(1)
	if c.rt.tracing() {
		if tx.parent == nil && c.traceRoot == 0 {
			// One ticket, one clock read and one sampling decision per
			// root lineage; the whole subtree inherits all three (D38).
			c.traceRoot = c.rt.rootSeq.Add(1)
			c.traceTS = time.Now().UnixNano()
			if every := c.rt.rec.sample.Load(); every > 1 && c.traceRoot%every != 0 {
				c.traceSkip = true
			}
		}
		if !c.traceSkip {
			c.traceEvent(EvBegin, tx.depth, "")
		}
	}
	c.rt.hook("BEGIN bn=%v borrowed=%v anc=%v ep=%d block=%p", tx.bitnum, borrowed, tx.anc, c.ep, c.block)
	return tx
}

// commit finishes the current transaction (paper commitTx): record the
// commit epoch for the publisher (unless borrowed, D4), advance the epoch,
// and splice the undo log into the parent in O(1).
func (c *Ctx) commit(tx *txDesc) {
	if !tx.borrowed && !c.rt.cfg.Serial && !c.bnWasDiscarded(tx) {
		c.rt.st.RecordCommit(tx.bitnum, c.ep)
	}
	c.advanceEpoch()
	if tx.parent != nil {
		tx.spliceInto(tx.parent)
	}
	c.popTx(tx)
	c.rt.stats.committed.Add(1)
	if c.rt.tracing() && !c.traceSkip {
		c.traceEvent(EvCommit, tx.depth, "")
	}
}

// bnWasDiscarded reports whether tx's bitnum was discarded out from under
// its block (unilateral discard, §6.2). Such a transaction must not
// publish commits: its bitnum's committed masks are finalized and the
// bitnum may already be re-used (D11).
func (c *Ctx) bnWasDiscarded(tx *txDesc) bool {
	return c.block != nil && tx.bitnum == c.block.bn && c.block.bnDiscarded.Load()
}

// mergedVictim reports whether this context's block had its bitnum
// unilaterally discarded while running: its transactions have been merged
// into the base transaction's identity. (A self-discard only happens at
// block finish, after the last transaction; a steal-borrowed block never
// reserved a bitnum.)
func (c *Ctx) mergedVictim() bool {
	return c.block != nil && !c.block.borrowed && c.block.bn.Valid() &&
		c.block.bnDiscarded.Load()
}

// popTx restores the context to the parent transaction. The parent's
// ancestor set is a begin-time snapshot, so the erase is applied against
// the parent's begin epoch as well as the current one: a unilaterally
// discarded bitnum is always published through any epoch at which it was
// still in a live ancestor set (D11).
func (c *Ctx) popTx(tx *txDesc) {
	c.cur = tx.parent
	if c.cur != nil {
		if c.rt.cfg.Serial {
			c.ancBase = c.cur.anc
		} else {
			c.ancBase = c.rt.st.Erase(c.cur.anc, c.cur.beginEp, c.ep)
		}
	} else {
		c.ancBase = 0
	}
}

// rollback undoes every write of tx — its own and those merged from
// committed descendants — newest first, popping the matching stack
// entries. A rolling-back transaction has no active descendants (only the
// innermost running transaction aborts), so its entries are on top of
// every stack it touched.
func (c *Ctx) rollback(tx *txDesc) {
	serial := c.rt.cfg.Serial
	// floors remembers, per object, the oldest (lowest-seq) record restored
	// so far. After a unilateral discard, splice order can disagree with
	// per-object stack order (a merged victim's entries may sit below a
	// sibling's), so value restoration must be guarded: only a record
	// older than everything restored so far may write the value (D16).
	// The map is allocated lazily — only when a second record touches an
	// already-restored object out of the common LIFO pattern.
	var floors map[*Object]uint64
	for r := tx.undoHead; r != nil; r = r.next {
		o := r.obj
		if r.read {
			// Retract the reader entry: an aborted reader's bitnum is
			// never published, so leaving it would block non-ancestor
			// writers until the block's discard (D16).
			o.mu.lock()
			o.readers.retract(r.anc, r.ep)
			o.mu.unlock()
			continue
		}
		if serial {
			o.val = r.saved
			continue
		}
		o.mu.lock()
		// Remove exactly this record's entry, wherever it sits (usually
		// the top).
		for i := len(o.stack) - 1; i >= o.head; i-- {
			if o.stack[i].seq == r.seq {
				copy(o.stack[i:], o.stack[i+1:])
				o.stack[len(o.stack)-1] = objEntry{}
				o.stack = o.stack[:len(o.stack)-1]
				break
			}
		}
		restore := true
		if floor, ok := floors[o]; ok {
			restore = r.seq < floor
		}
		if restore {
			o.val = r.saved
			if floors == nil {
				floors = make(map[*Object]uint64, 8)
			}
			floors[o] = r.seq
		}
		o.mu.unlock()
	}
	tx.undoHead, tx.undoTail, tx.writes = nil, nil, 0
}

// backoff sleeps for a randomized, exponentially growing interval after an
// abort, and yields the worker slot after repeated failures so that queued
// blocks — possibly the descendants whose completion will resolve the
// conflict — can run (DESIGN.md D6).
func (c *Ctx) backoff() {
	if c.rt.cfg.Serial {
		return
	}
	if c.aborts >= c.rt.cfg.YieldAfterAborts && c.slot != nil {
		c.rt.stats.slotYields.Add(1)
		c.yieldSlot()
	}
	shift := c.aborts
	if shift > 16 {
		shift = 16
	}
	d := c.rt.cfg.BackoffBase << shift
	if d > c.rt.cfg.BackoffMax {
		d = c.rt.cfg.BackoffMax
	}
	if c.slot != nil && d > 0 {
		d = time.Duration(c.slot.rng.Int63n(int64(d))) + 1
	}
	time.Sleep(d)
}

// crisisSleep quiesces a root that lost the crisis-token race: a long
// randomized sleep (within [CrisisBackoff/2, CrisisBackoff), dwarfing a
// root attempt's execution time) so the token holder runs effectively
// alone. Pure sleep — no lock is held or waited on — so a slot pinned
// through it delays, but can never deadlock, the scheduler. Returns the
// interval actually slept so callers can bound their total wait.
func (c *Ctx) crisisSleep() time.Duration {
	d := c.rt.cfg.CrisisBackoff
	if c.slot != nil && d > 1 {
		d = d/2 + time.Duration(c.slot.rng.Int63n(int64(d/2))) + 1
	}
	time.Sleep(d)
	return d
}

// yieldSlot releases the worker slot to the scheduler and re-acquires one,
// letting queued blocks run in between.
func (c *Ctx) yieldSlot() {
	ch := make(chan *slot, 1)
	c.rt.sched.parkWaiter(c.slot, ch)
	c.slot = nil
	sl := <-ch
	c.adoptSlot(sl, c.ep)
}

// ---------------------------------------------------------------------------
// Fork–join
// ---------------------------------------------------------------------------

// Parallel runs the given functions as parallel sibling blocks of the
// current transaction (paper §3.1) and returns when all of them have
// completed. Transactions they start become parallel children of the
// current transaction.
//
// A single function runs inline as a single-child block, borrowing the
// current bitnum (§6.2 case i). When the parent limiter is exhausted, the
// leading functions are serialized inline — re-checking for capacity in
// between — exactly as the paper degrades parallel{b1,..,bn} into b1
// followed by parallel{b2,..,bn} (§6.2 case ii). In the serial-nesting
// baseline mode every function runs inline.
func (c *Ctx) Parallel(fns ...func(*Ctx)) {
	if len(fns) == 0 {
		return
	}
	if c.rt.cfg.Serial {
		for _, fn := range fns {
			c.runInlineChild(fn)
		}
		return
	}
	rest := fns
	for len(rest) > 1 {
		if c.rt.limiter.TryAcquire() {
			break
		}
		c.rt.stats.serializedFork.Add(1)
		c.runInlineChild(rest[0])
		rest = rest[1:]
	}
	if len(rest) == 1 {
		c.runInlineChild(rest[0])
		return
	}
	// Limiter slot acquired: fork for real.
	if c.cur != nil {
		c.cur.liveBlocks.Add(int32(len(rest)))
	}
	j := newJoin(len(rest), c.ep)
	snap := cloneNotes(c.comDesc)
	blocks := make([]*block, len(rest))
	for i, fn := range rest {
		blocks[i] = &block{
			program:    fn,
			baseTx:     c.cur,
			minEp:      c.ep,
			succ:       j,
			comDesc:    snap,
			traceRoot:  c.traceRoot,
			traceBatch: c.traceBatch,
			traceTS:    c.traceTS,
			traceShard: c.traceShard,
			traceTag:   c.traceTag,
			traceSkip:  c.traceSkip,
		}
	}
	forkEp := c.ep
	sl := c.slot
	c.slot = nil
	c.rt.sched.enqueueAndRelease(blocks, sl)
	p := <-j.resume
	c.rt.stats.handoffs.Add(1)
	// The erase against the fork-time epoch catches bitnums whose discard
	// was published while we were parked, even when the resume epoch jumps
	// past their publication horizon (D11).
	c.adoptSlot(p.slot, p.minEp, forkEp)
	c.comDesc = mergeNotes(c.comDesc, p.comDesc)
	c.rt.limiter.Release()
	if p.ppanic {
		panic(p.pval)
	}
}

// runInlineChild runs fn as an inline single-child block: same goroutine,
// same slot, same bitnum (its transactions borrow the current one's).
func (c *Ctx) runInlineChild(fn func(*Ctx)) {
	saved := c.baseTx
	c.baseTx = c.cur
	c.rt.stats.inlineChildren.Add(1)
	defer func() { c.baseTx = saved }()
	fn(c)
}

// ---------------------------------------------------------------------------
// Accesses
// ---------------------------------------------------------------------------

// Load reads an object inside the current transaction. Per the paper
// (§4.2), every access is treated as a write for conflict purposes.
func (c *Ctx) Load(o *Object) any { return c.access(o, nil, false) }

// Store writes an object inside the current transaction and returns the
// previous value.
func (c *Ctx) Store(o *Object, v any) any { return c.access(o, v, true) }
