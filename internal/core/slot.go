package core

import (
	"math/rand"
	"sync/atomic"

	"pnstm/internal/epoch"
)

// slot is one of the P worker "threads" of the paper (§3). In this
// implementation worker identity is a token, not a goroutine: the goroutine
// currently running a block holds the slot and carries the per-thread state
// with it (DESIGN.md D2). When a context parks at a fork it releases the
// slot; when the last child finishes it hands its slot to the parked
// continuation.
type slot struct {
	id int

	// ep is the slot's published epoch. It is monotone non-decreasing
	// (DESIGN.md D11) so that the publisher's maxEpoch() sample dominates
	// the epoch of every context that ever ran — including contexts that
	// are currently parked. Only the slot's holder stores; the publisher
	// loads concurrently.
	ep atomic.Uint64

	// rng drives randomized backoff. Only the slot's holder uses it.
	rng *rand.Rand
}

// publish raises the slot's epoch to at least e.
func (s *slot) publish(e epoch.Epoch) {
	if epoch.Epoch(s.ep.Load()) < e {
		s.ep.Store(uint64(e))
	}
}

// epochOf returns the slot's published epoch.
func (s *slot) epochOf() epoch.Epoch { return epoch.Epoch(s.ep.Load()) }
