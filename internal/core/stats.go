package core

import "sync/atomic"

// Stats is a snapshot of runtime activity counters. All counters are
// cumulative since the runtime was created.
type Stats struct {
	// Transactions.
	Begun       uint64 // transactions started (including retries)
	Committed   uint64 // successful commits (including borrowed ones)
	Aborted     uint64 // aborts due to conflicts (retried)
	UserAbort   uint64 // aborts because the body returned an error
	Conflicts   uint64 // conflict detections (>= Aborted: spinning may resolve some)
	SpinSaves   uint64 // conflicts that disappeared while re-testing (lazy-publication window)
	Escalations uint64 // conflicts propagated to the parent transaction (nesting-aware CM)
	Crises      uint64 // cross-root livelock-breaker engagements (crisis-token acquisitions)

	// Scheduling.
	Dispatches     uint64 // blocks dispatched with a reserved bitnum
	BorrowDispatch uint64 // blocks dispatched borrowing the base bitnum (steal-time single child)
	InlineChildren uint64 // inner blocks run inline (single-child forks and nested atomics)
	SerializedFork uint64 // inner blocks serialized because the parent limiter was exhausted
	Handoffs       uint64 // slots handed from a finishing child to its continuation
	SlotYields     uint64 // contexts that gave up their slot after repeated aborts

	// Bitnum lifecycle.
	SelfDiscards   uint64 // bitnums discarded by their own finishing block
	RemoteDiscards uint64 // bitnums unilaterally discarded by a finishing sibling (§6.2)
	BorrowSwitches uint64 // blocks that switched to borrowed mode after a remote discard
	PeakParents    uint64 // high-water mark of parent-limiter slots (set at Stats() time)

	// Publication.
	HelpPublishes uint64 // synchronous publication cycles run by starved accessors (D7)

	// Tracing (D35). Filled from the flight recorder at Stats() time.
	TraceEvents  uint64 // lifecycle events recorded
	TraceDropped uint64 // events overwritten before any reader drained them
}

// Sub returns the counter-by-counter difference s − prev. Both snapshots
// must come from the same runtime, prev taken first; the result is the
// activity between the two (e.g. one server batch). PeakParents is a
// high-water mark, not a counter, so the later snapshot's value is kept.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Begun:          s.Begun - prev.Begun,
		Committed:      s.Committed - prev.Committed,
		Aborted:        s.Aborted - prev.Aborted,
		UserAbort:      s.UserAbort - prev.UserAbort,
		Conflicts:      s.Conflicts - prev.Conflicts,
		SpinSaves:      s.SpinSaves - prev.SpinSaves,
		Escalations:    s.Escalations - prev.Escalations,
		Crises:         s.Crises - prev.Crises,
		Dispatches:     s.Dispatches - prev.Dispatches,
		BorrowDispatch: s.BorrowDispatch - prev.BorrowDispatch,
		InlineChildren: s.InlineChildren - prev.InlineChildren,
		SerializedFork: s.SerializedFork - prev.SerializedFork,
		Handoffs:       s.Handoffs - prev.Handoffs,
		SlotYields:     s.SlotYields - prev.SlotYields,
		SelfDiscards:   s.SelfDiscards - prev.SelfDiscards,
		RemoteDiscards: s.RemoteDiscards - prev.RemoteDiscards,
		BorrowSwitches: s.BorrowSwitches - prev.BorrowSwitches,
		PeakParents:    s.PeakParents,
		HelpPublishes:  s.HelpPublishes - prev.HelpPublishes,
		TraceEvents:    s.TraceEvents - prev.TraceEvents,
		TraceDropped:   s.TraceDropped - prev.TraceDropped,
	}
}

// Add returns the counter-by-counter sum s + o — the aggregation used
// when a store runs several independent runtimes (one per engine shard)
// and reports one combined activity figure. Every counter is summed, so
// no aborts or commits are lost in the roll-up; PeakParents is a
// high-water mark, not a counter, so the aggregate takes the maximum.
func (s Stats) Add(o Stats) Stats {
	peak := s.PeakParents
	if o.PeakParents > peak {
		peak = o.PeakParents
	}
	return Stats{
		Begun:          s.Begun + o.Begun,
		Committed:      s.Committed + o.Committed,
		Aborted:        s.Aborted + o.Aborted,
		UserAbort:      s.UserAbort + o.UserAbort,
		Conflicts:      s.Conflicts + o.Conflicts,
		SpinSaves:      s.SpinSaves + o.SpinSaves,
		Escalations:    s.Escalations + o.Escalations,
		Crises:         s.Crises + o.Crises,
		Dispatches:     s.Dispatches + o.Dispatches,
		BorrowDispatch: s.BorrowDispatch + o.BorrowDispatch,
		InlineChildren: s.InlineChildren + o.InlineChildren,
		SerializedFork: s.SerializedFork + o.SerializedFork,
		Handoffs:       s.Handoffs + o.Handoffs,
		SlotYields:     s.SlotYields + o.SlotYields,
		SelfDiscards:   s.SelfDiscards + o.SelfDiscards,
		RemoteDiscards: s.RemoteDiscards + o.RemoteDiscards,
		BorrowSwitches: s.BorrowSwitches + o.BorrowSwitches,
		PeakParents:    peak,
		HelpPublishes:  s.HelpPublishes + o.HelpPublishes,
		TraceEvents:    s.TraceEvents + o.TraceEvents,
		TraceDropped:   s.TraceDropped + o.TraceDropped,
	}
}

// AbortRate returns the fraction of started transactions that aborted on
// a conflict (retries count as fresh starts). Zero when nothing ran.
func (s Stats) AbortRate() float64 {
	if s.Begun == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(s.Begun)
}

// counters is the live, atomically updated form of Stats.
type counters struct {
	begun, committed, aborted, userAbort, conflicts, spinSaves       atomic.Uint64
	escalations, crises                                              atomic.Uint64
	dispatches, borrowDispatch, inlineChildren, serializedFork       atomic.Uint64
	handoffs, slotYields, selfDiscards, remoteDiscards, borrowSwitch atomic.Uint64
	helpPublishes                                                    atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Begun:          c.begun.Load(),
		Committed:      c.committed.Load(),
		Aborted:        c.aborted.Load(),
		UserAbort:      c.userAbort.Load(),
		Conflicts:      c.conflicts.Load(),
		SpinSaves:      c.spinSaves.Load(),
		Escalations:    c.escalations.Load(),
		Crises:         c.crises.Load(),
		Dispatches:     c.dispatches.Load(),
		BorrowDispatch: c.borrowDispatch.Load(),
		InlineChildren: c.inlineChildren.Load(),
		SerializedFork: c.serializedFork.Load(),
		Handoffs:       c.handoffs.Load(),
		SlotYields:     c.slotYields.Load(),
		SelfDiscards:   c.selfDiscards.Load(),
		RemoteDiscards: c.remoteDiscards.Load(),
		BorrowSwitches: c.borrowSwitch.Load(),
		HelpPublishes:  c.helpPublishes.Load(),
	}
}
