package core

import (
	"sync/atomic"
	"testing"
)

// TestCrossedTransfersDeadlockBreaking reproduces the parent-level
// deadlock that plain requester-aborts cannot resolve: two transactions
// each fork {debit, credit} over the same two accounts in opposite
// directions. Whichever debit commits first leaves an entry owned by its
// still-parked parent; the opposing credit then conflicts with that
// lineage and aborting the credit leaf releases nothing. Only escalation —
// aborting one of the parents — breaks the cycle (nesting-aware contention
// management, paper §9).
func TestCrossedTransfersDeadlockBreaking(t *testing.T) {
	for round := 0; round < 10; round++ {
		rt := newRT(t, 4)
		a := NewObject(1000)
		b := NewObject(1000)
		transfer := func(from, to *Object, amt int) func(*Ctx) {
			return func(c *Ctx) {
				if err := c.Atomic(func(c *Ctx) error {
					c.Parallel(
						func(c *Ctx) {
							_ = c.Atomic(func(c *Ctx) error {
								c.Store(from, c.Load(from).(int)-amt)
								return nil
							})
						},
						func(c *Ctx) {
							_ = c.Atomic(func(c *Ctx) error {
								c.Store(to, c.Load(to).(int)+amt)
								return nil
							})
						},
					)
					return nil
				}); err != nil {
					t.Error(err)
				}
			}
		}
		err := rt.Run(func(c *Ctx) {
			c.Parallel(transfer(a, b, 10), transfer(b, a, 25))
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Peek().(int) + b.Peek().(int); got != 2000 {
			t.Fatalf("round %d: money not conserved: %d", round, got)
		}
		if a.Peek().(int) != 1000+15 && a.Peek().(int) != 1000-15+30 {
			// a = 1000 - 10 + 25 = 1015 regardless of order.
		}
		if a.Peek().(int) != 1015 || b.Peek().(int) != 985 {
			t.Fatalf("round %d: a=%v b=%v", round, a.Peek(), b.Peek())
		}
		rt.Close()
	}
}

// TestEscalationReleasesCommittedChildWrites pins down the mechanism:
// when a nested transaction escalates, the parent's rollback must undo the
// committed sibling's writes so the other side can proceed.
func TestEscalationReleasesCommittedChildWrites(t *testing.T) {
	rt := newRT(t, 4, func(c *Config) {
		c.EscalateAfterAborts = 2 // escalate fast
		c.SpinRetries = 1
	})
	x := NewObject(0)
	var commits atomic.Int64
	const pairs = 6
	err := rt.Run(func(c *Ctx) {
		fns := make([]func(*Ctx), pairs)
		for i := range fns {
			fns[i] = func(c *Ctx) {
				if err := c.Atomic(func(c *Ctx) error {
					// Child 1 bumps the shared counter and commits into
					// the parent; child 2 just spins a little, keeping the
					// parent parked so its lineage stays active.
					c.Parallel(
						func(c *Ctx) {
							_ = c.Atomic(func(c *Ctx) error {
								c.Store(x, c.Load(x).(int)+1)
								return nil
							})
						},
						func(c *Ctx) {
							for k := 0; k < 100; k++ {
								_ = k
							}
						},
					)
					return nil
				}); err != nil {
					t.Error(err)
				}
				commits.Add(1)
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if commits.Load() != pairs {
		t.Fatalf("commits = %d", commits.Load())
	}
	if got := x.Peek().(int); got != pairs {
		t.Fatalf("x = %d, want %d (stats %+v)", got, pairs, rt.Stats())
	}
	t.Logf("stats: %+v", rt.Stats())
}
