package epoch

import (
	"sync"
	"sync/atomic"
	"time"

	"pnstm/internal/bitvec"
)

// Publisher is the background thread(s) of paper §5.1: the only writer of
// the committed masks. It continuously folds the commit ledger (State)
// into the MaskTable and returns discarded bitnums to the free queue.
//
// Commit publication (paper Fig. 4, lines 4–7): when lastComEp[bn] moved
// past the publication frontier, set bn in every committed mask up to it.
//
// Discard processing (paper Fig. 4, lines 8–18): raise the global
// "discarding" bit, publish bn through one epoch PAST the maximum current
// epoch of any running context, then free the bitnum with a minimum epoch
// beyond the published horizon. The extra epoch of slack relative to the
// paper closes a window in which a context's pre-advance erase check can
// race the discarding store (DESIGN.md D5): with sequentially consistent
// atomics, at most one epoch advance can have loaded stale values before
// the publisher's maxEpoch() read, so publishing through maxCurEp+1 and
// re-using from maxCurEp+2 guarantees no two transactions ever share a
// bitnum at overlapping epochs.
//
// The publisher can be parallelized by partitioning the bitnum space
// (paper §5.1); Partitions > 1 enables that.
type Publisher struct {
	st       *State
	maxEpoch func() Epoch
	free     func(bn bitvec.Bitnum, minEp Epoch)

	parts []*partition

	paused atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup

	// Stats (atomic, readable concurrently).
	cycles    atomic.Uint64
	maskOrs   atomic.Uint64
	published atomic.Uint64 // commit publications
	freed     atomic.Uint64 // discards processed
}

// partition owns a disjoint subset of the bitnum space.
type partition struct {
	mu         sync.Mutex // serializes cycles (background loop vs. StepOnce)
	bns        []bitvec.Bitnum
	lastInMask [bitvec.Word]Epoch // frontier; only this partition's bns used
}

// PublisherConfig configures a Publisher.
type PublisherConfig struct {
	// Bitnums is the number of live bitnum slots (N). Only [0, Bitnums) is
	// scanned.
	Bitnums int
	// Partitions is the number of background publisher goroutines
	// (paper §5.1 parallel publisher). Defaults to 1.
	Partitions int
	// IdleSleep is how long a publisher goroutine sleeps after a cycle
	// that found no work. Defaults to 20µs.
	IdleSleep time.Duration
	// MaxEpoch must return an epoch at least as large as the current epoch
	// of every running context.
	MaxEpoch func() Epoch
	// Free returns a fully published bitnum to the free queue with the
	// given minimum re-use epoch.
	Free func(bn bitvec.Bitnum, minEp Epoch)
	// StartPaused creates the publisher in the paused state (tests).
	StartPaused bool
}

// NewPublisher creates and starts a publisher.
func NewPublisher(st *State, cfg PublisherConfig) *Publisher {
	if cfg.Bitnums <= 0 || cfg.Bitnums > bitvec.Word {
		panic("epoch: PublisherConfig.Bitnums out of range")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitions > cfg.Bitnums {
		cfg.Partitions = cfg.Bitnums
	}
	if cfg.IdleSleep <= 0 {
		cfg.IdleSleep = 20 * time.Microsecond
	}
	if cfg.MaxEpoch == nil || cfg.Free == nil {
		panic("epoch: PublisherConfig requires MaxEpoch and Free")
	}
	p := &Publisher{
		st:       st,
		maxEpoch: cfg.MaxEpoch,
		free:     cfg.Free,
		stop:     make(chan struct{}),
	}
	p.paused.Store(cfg.StartPaused)
	p.parts = make([]*partition, cfg.Partitions)
	for i := range p.parts {
		p.parts[i] = &partition{}
	}
	for bn := 0; bn < cfg.Bitnums; bn++ {
		part := p.parts[bn%cfg.Partitions]
		part.bns = append(part.bns, bitvec.Bitnum(bn))
	}
	for _, part := range p.parts {
		p.wg.Add(1)
		go p.loop(part, cfg.IdleSleep)
	}
	return p
}

// loop is one background publisher goroutine.
func (p *Publisher) loop(part *partition, idle time.Duration) {
	defer p.wg.Done()
	sleep := idle
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if p.paused.Load() {
			time.Sleep(idle)
			continue
		}
		part.mu.Lock()
		work := p.cycle(part)
		part.mu.Unlock()
		p.cycles.Add(1)
		if work {
			sleep = idle
			continue
		}
		// Exponential idle backoff, capped: keeps publication latency low
		// under load without burning a core when the system is quiet.
		time.Sleep(sleep)
		if sleep < 8*idle {
			sleep *= 2
		}
	}
}

// cycle scans the partition's bitnums once. Reports whether any
// publication or freeing happened.
func (p *Publisher) cycle(part *partition) bool {
	work := false
	for _, bn := range part.bns {
		if p.publishBitnum(part, bn) {
			work = true
		}
	}
	return work
}

// publishBitnum folds bn's pending commits and discard into the masks.
func (p *Publisher) publishBitnum(part *partition, bn bitvec.Bitnum) bool {
	st := p.st
	work := false
	last := part.lastInMask[bn]
	if lc := st.LastCommit(bn); lc > last {
		st.Masks.OrRange(last+1, lc, bn.Bit())
		p.maskOrs.Add(uint64(lc - last))
		part.lastInMask[bn] = lc
		last = lc
		p.published.Add(1)
		work = true
	}
	if st.IsDiscarded(bn) {
		st.beginDiscarding(bn)
		// The discarding bit must be visible before we sample the maximum
		// current epoch (paper Fig. 4 order; see D5).
		target := p.maxEpoch() + 1
		if lc := st.LastCommit(bn); lc > target {
			// Defensive: commits always happen at epochs <= some running
			// context's epoch, so this should be unreachable; never free a
			// bitnum below its own commit frontier regardless.
			target = lc
		}
		if target > last {
			st.Masks.OrRange(last+1, target, bn.Bit())
			p.maskOrs.Add(uint64(target - last))
			part.lastInMask[bn] = target
		}
		st.endDiscarding(bn)
		st.clearDiscarded(bn)
		p.free(bn, target+1)
		p.freed.Add(1)
		work = true
	}
	return work
}

// Pause suspends background publication. Pending commits stay unpublished
// until Resume or StepOnce; used by tests to open the lazy window wide.
func (p *Publisher) Pause() { p.paused.Store(true) }

// Resume restarts background publication.
func (p *Publisher) Resume() { p.paused.Store(false) }

// Paused reports whether the publisher is paused.
func (p *Publisher) Paused() bool { return p.paused.Load() }

// StepOnce runs a single full publication cycle over every bitnum on the
// caller's goroutine, regardless of the paused state. Safe to call
// concurrently with the background loops. Returns whether any work was
// done.
func (p *Publisher) StepOnce() bool {
	work := false
	for _, part := range p.parts {
		part.mu.Lock()
		if p.cycle(part) {
			work = true
		}
		part.mu.Unlock()
	}
	return work
}

// Drain runs StepOnce until a cycle finds no work. It publishes everything
// pending at call time; work arriving concurrently may remain.
func (p *Publisher) Drain() {
	for p.StepOnce() {
	}
}

// Close stops the background goroutines and waits for them. The mask table
// remains readable.
func (p *Publisher) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
}

// PublisherStats is a snapshot of publisher activity counters.
type PublisherStats struct {
	Cycles       uint64 // background cycles executed
	MaskWrites   uint64 // per-epoch mask OR operations
	CommitFolds  uint64 // commit publications folded
	BitnumsFreed uint64 // discards processed and freed
}

// Stats returns a snapshot of the publisher's counters.
func (p *Publisher) Stats() PublisherStats {
	return PublisherStats{
		Cycles:       p.cycles.Load(),
		MaskWrites:   p.maskOrs.Load(),
		CommitFolds:  p.published.Load(),
		BitnumsFreed: p.freed.Load(),
	}
}

// Frontier returns the publication frontier of bn (diagnostics/tests).
func (p *Publisher) Frontier(bn bitvec.Bitnum) Epoch {
	for _, part := range p.parts {
		for _, b := range part.bns {
			if b == bn {
				part.mu.Lock()
				e := part.lastInMask[bn]
				part.mu.Unlock()
				return e
			}
		}
	}
	return 0
}
