package epoch

import (
	"sync"
	"sync/atomic"

	"pnstm/internal/bitvec"
)

// chunkBits sizes mask-table chunks: 1<<chunkBits epochs per chunk
// (4096 epochs = 32 KiB per chunk).
const chunkBits = 12

const chunkLen = 1 << chunkBits

type maskChunk [chunkLen]atomic.Uint64

// MaskTable is the global array of committed masks, one bit vector per
// epoch (paper §5: comMask[0..E]). comMask[e] holds the bitnums of
// transactions that were active at epoch e and have since committed (or
// whose bitnum was discarded at-or-before e).
//
// The paper allocates a fixed-size array of E masks; we grow the table on
// demand instead, so that arbitrarily long executions work without a
// reclaiming "session". Only publisher goroutines write (Or); any context
// may read (Get) without locking: the chunk directory is swapped with an
// atomic pointer and chunks themselves are arrays of atomics.
type MaskTable struct {
	dir    atomic.Pointer[[]*maskChunk]
	growMu sync.Mutex // serializes directory growth among publishers
}

// Get returns the committed mask of epoch e. Epochs beyond the allocated
// range have an empty mask, which is exactly the lazy semantics: nothing
// has been published there yet.
func (t *MaskTable) Get(e Epoch) bitvec.Vec {
	dir := t.dir.Load()
	if dir == nil {
		return 0
	}
	idx := int(e >> chunkBits)
	if idx >= len(*dir) {
		return 0
	}
	return bitvec.Vec((*dir)[idx][e&(chunkLen-1)].Load())
}

// Or sets the given bits in the committed mask of epoch e. Publisher-only.
func (t *MaskTable) Or(e Epoch, bits bitvec.Vec) {
	idx := int(e >> chunkBits)
	dir := t.dir.Load()
	if dir == nil || idx >= len(*dir) {
		t.grow(idx + 1)
		dir = t.dir.Load()
	}
	(*dir)[idx][e&(chunkLen-1)].Or(uint64(bits))
}

// OrRange sets bits in every mask of the inclusive epoch range [lo, hi].
// This is the publisher's bulk operation (paper Fig. 4, lines 5–6 and
// 11–12). It is a no-op when lo > hi.
func (t *MaskTable) OrRange(lo, hi Epoch, bits bitvec.Vec) {
	for e := lo; e <= hi; e++ {
		t.Or(e, bits)
	}
}

// grow extends the chunk directory to hold at least n chunks. Existing
// chunk pointers are copied, so concurrent readers holding the old
// directory still observe every published mask.
func (t *MaskTable) grow(n int) {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	old := t.dir.Load()
	oldLen := 0
	if old != nil {
		oldLen = len(*old)
	}
	if oldLen >= n {
		return
	}
	newLen := oldLen * 2
	if newLen < n {
		newLen = n
	}
	if newLen < 4 {
		newLen = 4
	}
	next := make([]*maskChunk, newLen)
	if old != nil {
		copy(next, *old)
	}
	for i := oldLen; i < newLen; i++ {
		next[i] = new(maskChunk)
	}
	t.dir.Store(&next)
}

// Allocated returns the number of epochs the table currently has storage
// for. Diagnostics only.
func (t *MaskTable) Allocated() int {
	dir := t.dir.Load()
	if dir == nil {
		return 0
	}
	return len(*dir) * chunkLen
}
