package epoch

import (
	"sync"
	"testing"

	"pnstm/internal/bitvec"
)

func TestRecordCommitMonotone(t *testing.T) {
	var st State
	st.RecordCommit(4, 10)
	st.RecordCommit(4, 7) // stale write from a previous holder must not regress
	if got := st.LastCommit(4); got != 10 {
		t.Fatalf("LastCommit = %d, want 10", got)
	}
	st.RecordCommit(4, 11)
	if got := st.LastCommit(4); got != 11 {
		t.Fatalf("LastCommit = %d, want 11", got)
	}
}

func TestRecordCommitConcurrentMax(t *testing.T) {
	var st State
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for e := Epoch(1); e <= 1000; e++ {
				st.RecordCommit(9, e)
			}
		}(g)
	}
	wg.Wait()
	if got := st.LastCommit(9); got != 1000 {
		t.Fatalf("LastCommit = %d, want 1000", got)
	}
}

func TestDiscardRecordsLastEpoch(t *testing.T) {
	var st State
	st.Discard(3, 42)
	if !st.IsDiscarded(3) {
		t.Fatal("IsDiscarded = false")
	}
	if got := st.LastCommit(3); got != 42 {
		t.Fatalf("LastCommit = %d, want 42", got)
	}
}

func TestEraseSubtractsDiscardingAndMasks(t *testing.T) {
	var st State
	st.Masks.Or(5, bitvec.Of(1))
	st.Masks.Or(9, bitvec.Of(2))
	st.beginDiscarding(7)
	defer st.endDiscarding(7)

	anc := bitvec.Of(1, 2, 7, 30)
	got := st.Erase(anc, 5, 9)
	if got != bitvec.Of(30) {
		t.Fatalf("Erase = %v, want {30}", got)
	}
	// Without the second epoch, bit 2 survives.
	got = st.Erase(anc, 5)
	if got != bitvec.Of(2, 30) {
		t.Fatalf("Erase = %v, want {2,30}", got)
	}
	// No epochs: only discarding is subtracted.
	got = st.Erase(anc)
	if got != bitvec.Of(1, 2, 30) {
		t.Fatalf("Erase = %v, want {1,2,30}", got)
	}
}

func TestDiscardingBracket(t *testing.T) {
	var st State
	if !st.Discarding().Empty() {
		t.Fatal("fresh state has discarding bits")
	}
	st.beginDiscarding(3)
	st.beginDiscarding(5)
	if got := st.Discarding(); got != bitvec.Of(3, 5) {
		t.Fatalf("Discarding = %v", got)
	}
	st.endDiscarding(3)
	if got := st.Discarding(); got != bitvec.Of(5) {
		t.Fatalf("Discarding = %v", got)
	}
	st.endDiscarding(5)
	if !st.Discarding().Empty() {
		t.Fatal("Discarding not cleared")
	}
}

func TestMaxHelper(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Fatal("Max broken")
	}
}
