// Package epoch implements the logical-clock machinery of the parallel
// nested STM: epochs (paper §3), the per-epoch committed masks and the lazy
// bitnum-reclaiming publisher (paper §5).
//
// Epochs are per-context Lamport clocks. Every event the TM reasons about —
// transaction begin, commit, and each memory access — is stamped with the
// epoch of the context that performed it, and blocks/bitnums carry minimum
// epochs so that happens-before is preserved across work stealing and
// bitnum re-use.
package epoch

// Epoch is a logical clock value. Epoch 0 is reserved ("before everything"):
// contexts start at epoch 1, and committed masks for epoch 0 stay empty.
type Epoch uint64

// Max returns the larger of two epochs.
func Max(a, b Epoch) Epoch {
	if a > b {
		return a
	}
	return b
}
