package epoch

import (
	"sync/atomic"

	"pnstm/internal/bitvec"
)

// State is the shared commit/discard ledger between worker contexts and the
// publisher.
//
// The paper (§5.1) keeps per-thread lastComEp / discardBitnum vectors that
// the publisher scans. Because a bitnum has exactly one holder at any time
// and hand-offs are mediated by the publisher (a bitnum is only re-reserved
// after the publisher freed it), a single global slot per bitnum is
// equivalent (DESIGN.md D3). lastComEp is advanced with a CAS-max so that a
// straggling store from a previous holder can never regress a later
// holder's published commit epoch.
type State struct {
	Masks MaskTable

	// lastComEp[b] is the last epoch at which a transaction identified by
	// bitnum b committed (paper: Ti.lastComEp). Written by the bitnum's
	// holder, read (and folded into Masks) by the publisher.
	lastComEp [bitvec.Word]atomic.Uint64

	// discarded[b] is set when the block holding b finished (or b was
	// unilaterally discarded, §6.2) and b awaits freeing by the publisher
	// (paper: Ti.discardBitnum).
	discarded [bitvec.Word]atomic.Bool

	// discarding is the global vector of bitnums currently being
	// discard-published (paper §6.2). Contexts subtract it (together with
	// the committed mask of their epoch) from their ancestor sets before
	// every epoch change.
	discarding atomic.Uint64
}

// RecordCommit notes that the transaction identified by bn committed at
// epoch ep (paper commitTx line 1). Monotone: never regresses.
func (s *State) RecordCommit(bn bitvec.Bitnum, ep Epoch) {
	slot := &s.lastComEp[bn]
	for {
		cur := slot.Load()
		if Epoch(cur) >= ep {
			return
		}
		if slot.CompareAndSwap(cur, uint64(ep)) {
			return
		}
	}
}

// LastCommit returns the last recorded commit epoch for bn.
func (s *State) LastCommit(bn bitvec.Bitnum) Epoch {
	return Epoch(s.lastComEp[bn].Load())
}

// Discard marks bn as relinquished at epoch ep (paper discardBitnum): the
// publisher will extend its committed masks past every live epoch and then
// return it to the free queue. lastEp is folded in first so the publisher
// never frees a bitnum whose final commits are unpublished.
func (s *State) Discard(bn bitvec.Bitnum, lastEp Epoch) {
	s.RecordCommit(bn, lastEp)
	s.discarded[bn].Store(true)
}

// IsDiscarded reports whether bn has a pending discard.
func (s *State) IsDiscarded(bn bitvec.Bitnum) bool {
	return s.discarded[bn].Load()
}

// Discarding returns the vector of bitnums in the middle of discard
// publication.
func (s *State) Discarding() bitvec.Vec {
	return bitvec.Vec(s.discarding.Load())
}

// Erase implements the §6.2 ancestor-set cleanup that must run before every
// epoch change:
//
//	anc −= (discarding + comMask[ep])
//
// We additionally subtract the mask of the epoch being moved *to* (and the
// caller may pass any other epochs that bound the move, e.g. a block's
// minimum epoch at dispatch): contexts in this implementation can jump
// epochs when adopting a recycled bitnum's minimum epoch, and the discard
// publication horizon (maxCurEp+1) may lie strictly between the old and new
// epoch (DESIGN.md D11).
func (s *State) Erase(anc bitvec.Vec, eps ...Epoch) bitvec.Vec {
	out := anc.Minus(s.Discarding())
	for _, e := range eps {
		out = out.Minus(s.Masks.Get(e))
	}
	return out
}

// beginDiscarding / endDiscarding bracket a publisher's discard publication
// for one bitnum (paper Fig. 4, lines 9 and 14).
func (s *State) beginDiscarding(bn bitvec.Bitnum) { s.discarding.Or(uint64(bn.Bit())) }
func (s *State) endDiscarding(bn bitvec.Bitnum)   { s.discarding.And(^uint64(bn.Bit())) }
func (s *State) clearDiscarded(bn bitvec.Bitnum)  { s.discarded[bn].Store(false) }
