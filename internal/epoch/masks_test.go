package epoch

import (
	"sync"
	"testing"
	"testing/quick"

	"pnstm/internal/bitvec"
)

func TestMaskTableEmpty(t *testing.T) {
	var mt MaskTable
	for _, e := range []Epoch{0, 1, 100, 1 << 40} {
		if got := mt.Get(e); !got.Empty() {
			t.Fatalf("Get(%d) = %v on empty table", e, got)
		}
	}
	if mt.Allocated() != 0 {
		t.Fatalf("Allocated = %d", mt.Allocated())
	}
}

func TestMaskTableOrGet(t *testing.T) {
	var mt MaskTable
	mt.Or(5, bitvec.Of(3))
	mt.Or(5, bitvec.Of(7))
	mt.Or(6, bitvec.Of(1))
	if got := mt.Get(5); got != bitvec.Of(3, 7) {
		t.Fatalf("Get(5) = %v", got)
	}
	if got := mt.Get(6); got != bitvec.Of(1) {
		t.Fatalf("Get(6) = %v", got)
	}
	if got := mt.Get(4); !got.Empty() {
		t.Fatalf("Get(4) = %v", got)
	}
}

func TestMaskTableGrowthAcrossChunks(t *testing.T) {
	var mt MaskTable
	// Touch epochs in several chunks, including a far jump.
	eps := []Epoch{0, 1, chunkLen - 1, chunkLen, 3*chunkLen + 17, 10 * chunkLen}
	for i, e := range eps {
		mt.Or(e, bitvec.Of(bitvec.Bitnum(i)))
	}
	for i, e := range eps {
		if got := mt.Get(e); got != bitvec.Of(bitvec.Bitnum(i)) {
			t.Fatalf("Get(%d) = %v, want bit %d", e, got, i)
		}
	}
	// Untouched epochs in allocated chunks are empty.
	if got := mt.Get(2 * chunkLen); !got.Empty() {
		t.Fatalf("Get(untouched) = %v", got)
	}
}

func TestMaskTableOrRange(t *testing.T) {
	var mt MaskTable
	mt.OrRange(10, 20, bitvec.Of(2))
	mt.OrRange(21, 20, bitvec.Of(3)) // empty range: no-op
	for e := Epoch(10); e <= 20; e++ {
		if !mt.Get(e).Has(2) {
			t.Fatalf("epoch %d missing bit", e)
		}
	}
	if mt.Get(9).Has(2) || mt.Get(21).Has(2) {
		t.Fatal("range leaked outside [10,20]")
	}
	if mt.Get(21).Has(3) {
		t.Fatal("empty range wrote")
	}
}

// Readers racing with a growing writer must never observe a lost
// publication: once Or returns, every later Get sees the bit.
func TestMaskTableConcurrentReadersDuringGrowth(t *testing.T) {
	var mt MaskTable
	const top = 4 * chunkLen
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for e := Epoch(0); e < top; e += 97 {
					v := mt.Get(e)
					if !v.Empty() && v != bitvec.Of(1) {
						t.Errorf("Get(%d) = %v", e, v)
						return
					}
				}
			}
		}()
	}
	for e := Epoch(0); e < top; e++ {
		mt.Or(e, bitvec.Of(1))
	}
	close(stop)
	wg.Wait()
	for e := Epoch(0); e < top; e++ {
		if !mt.Get(e).Has(1) {
			t.Fatalf("lost publication at epoch %d", e)
		}
	}
}

func TestMaskMonotonicityProperty(t *testing.T) {
	// Masks only accumulate: Or can never clear a previously set bit.
	var mt MaskTable
	f := func(e16 uint16, b1, b2 uint8) bool {
		e := Epoch(e16)
		bn1 := bitvec.Bitnum(b1 % bitvec.Word)
		bn2 := bitvec.Bitnum(b2 % bitvec.Word)
		mt.Or(e, bn1.Bit())
		before := mt.Get(e)
		mt.Or(e, bn2.Bit())
		after := mt.Get(e)
		return before.SubsetOf(after) && after.Has(bn1) && after.Has(bn2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
