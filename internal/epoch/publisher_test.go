package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnstm/internal/bitvec"
)

// pubHarness wires a Publisher to controllable epoch/free endpoints.
type pubHarness struct {
	st     State
	maxEp  atomic.Uint64
	mu     sync.Mutex
	freed  []freeEvent
	freedC chan freeEvent
}

type freeEvent struct {
	bn    bitvec.Bitnum
	minEp Epoch
}

func newHarness(t *testing.T, bitnums, partitions int, paused bool) (*pubHarness, *Publisher) {
	t.Helper()
	h := &pubHarness{freedC: make(chan freeEvent, 128)}
	p := NewPublisher(&h.st, PublisherConfig{
		Bitnums:     bitnums,
		Partitions:  partitions,
		MaxEpoch:    func() Epoch { return Epoch(h.maxEp.Load()) },
		Free:        h.onFree,
		StartPaused: paused,
		IdleSleep:   5 * time.Microsecond,
	})
	t.Cleanup(p.Close)
	return h, p
}

func (h *pubHarness) onFree(bn bitvec.Bitnum, minEp Epoch) {
	h.mu.Lock()
	h.freed = append(h.freed, freeEvent{bn, minEp})
	h.mu.Unlock()
	h.freedC <- freeEvent{bn, minEp}
}

func TestPublisherPublishesCommitRange(t *testing.T) {
	h, p := newHarness(t, 8, 1, true)
	h.maxEp.Store(10)
	h.st.RecordCommit(2, 7)
	p.StepOnce()
	for e := Epoch(1); e <= 7; e++ {
		if !h.st.Masks.Get(e).Has(2) {
			t.Fatalf("epoch %d not published", e)
		}
	}
	if h.st.Masks.Get(8).Has(2) {
		t.Fatal("published past lastComEp")
	}
	// A later commit extends the range without re-publishing old epochs.
	h.st.RecordCommit(2, 9)
	p.StepOnce()
	if !h.st.Masks.Get(9).Has(2) || !h.st.Masks.Get(8).Has(2) {
		t.Fatal("extension not published")
	}
	if got := p.Frontier(2); got != 9 {
		t.Fatalf("frontier = %d", got)
	}
}

func TestPublisherDiscardPublishesSlackAndFrees(t *testing.T) {
	h, p := newHarness(t, 8, 1, true)
	h.maxEp.Store(20)
	h.st.Discard(5, 12)
	p.StepOnce()

	// Published through maxCurEp+1 = 21 (D5 slack).
	for e := Epoch(1); e <= 21; e++ {
		if !h.st.Masks.Get(e).Has(5) {
			t.Fatalf("epoch %d not discard-published", e)
		}
	}
	if h.st.Masks.Get(22).Has(5) {
		t.Fatal("published past slack horizon")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.freed) != 1 {
		t.Fatalf("freed %d times", len(h.freed))
	}
	if h.freed[0].bn != 5 || h.freed[0].minEp != 22 {
		t.Fatalf("freed %+v, want bn 5 minEp 22", h.freed[0])
	}
	if h.st.IsDiscarded(5) {
		t.Fatal("discarded flag not cleared")
	}
	if !h.st.Discarding().Empty() {
		t.Fatal("discarding vector not cleared")
	}
}

func TestPublisherDiscardIsProcessedOnce(t *testing.T) {
	h, p := newHarness(t, 4, 1, true)
	h.maxEp.Store(3)
	h.st.Discard(1, 2)
	p.StepOnce()
	p.StepOnce()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.freed) != 1 {
		t.Fatalf("freed %d times, want 1", len(h.freed))
	}
}

func TestPublisherBackgroundProgress(t *testing.T) {
	h, _ := newHarness(t, 8, 1, false)
	h.maxEp.Store(50)
	h.st.Discard(3, 40)
	select {
	case ev := <-h.freedC:
		if ev.bn != 3 || ev.minEp != 52 {
			t.Fatalf("freed %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("background publisher made no progress")
	}
}

func TestPublisherPauseBlocksPublication(t *testing.T) {
	h, p := newHarness(t, 8, 1, false)
	p.Pause()
	if !p.Paused() {
		t.Fatal("not paused")
	}
	h.maxEp.Store(5)
	h.st.RecordCommit(0, 4)
	time.Sleep(20 * time.Millisecond)
	if h.st.Masks.Get(4).Has(0) {
		t.Fatal("paused publisher still published")
	}
	p.Resume()
	deadline := time.Now().Add(5 * time.Second)
	for !h.st.Masks.Get(4).Has(0) {
		if time.Now().After(deadline) {
			t.Fatal("resume did not publish")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPublisherPartitionsCoverAllBitnums(t *testing.T) {
	h, p := newHarness(t, 16, 3, true)
	h.maxEp.Store(9)
	for bn := bitvec.Bitnum(0); bn < 16; bn++ {
		h.st.RecordCommit(bn, 6)
	}
	p.Drain()
	for bn := bitvec.Bitnum(0); bn < 16; bn++ {
		for e := Epoch(1); e <= 6; e++ {
			if !h.st.Masks.Get(e).Has(bn) {
				t.Fatalf("bn %d epoch %d unpublished", bn, e)
			}
		}
	}
	st := p.Stats()
	if st.CommitFolds != 16 {
		t.Fatalf("CommitFolds = %d", st.CommitFolds)
	}
}

func TestPublisherDrainQuiesces(t *testing.T) {
	h, p := newHarness(t, 8, 2, true)
	h.maxEp.Store(100)
	for bn := bitvec.Bitnum(0); bn < 8; bn++ {
		h.st.RecordCommit(bn, Epoch(10+bn))
	}
	p.Drain()
	if p.StepOnce() {
		t.Fatal("StepOnce found work after Drain")
	}
}

// A commit that lands while a discard is in flight must still be covered by
// the published horizon (the free minEp must exceed any commit epoch).
func TestPublisherDiscardCoversLateCommit(t *testing.T) {
	h, p := newHarness(t, 4, 1, true)
	h.maxEp.Store(30)
	h.st.RecordCommit(2, 25)
	h.st.Discard(2, 28)
	p.StepOnce()
	h.mu.Lock()
	ev := h.freed[0]
	h.mu.Unlock()
	if ev.minEp <= 28 {
		t.Fatalf("minEp %d does not clear last commit epoch", ev.minEp)
	}
	for e := Epoch(1); e < ev.minEp; e++ {
		if !h.st.Masks.Get(e).Has(2) {
			t.Fatalf("gap at epoch %d below minEp %d", e, ev.minEp)
		}
	}
}

func TestPublisherCloseIdempotent(t *testing.T) {
	_, p := newHarness(t, 4, 2, false)
	p.Close()
	p.Close() // must not panic or deadlock
}
